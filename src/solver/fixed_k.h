// The §3.3 special case: ADP on a *full* CQ is poly-time solvable for every
// fixed k. The paper's argument enumerates all (|Q(D)| choose k) ways of
// choosing the k outputs to remove and observes that, for a fixed choice,
// input tuples collapse into at most 2^k equivalence classes by which of
// the chosen outputs they would remove.
//
// This implementation follows that argument: for each k-subset of outputs
// the candidate tuples are the (at most k*p) supporters of those outputs;
// each is reduced to its coverage bitmask and a minimum mask cover is found
// by subset DP. Practical for small k (the point of the special case);
// guarded against combinatorial blowup.

#ifndef ADP_SOLVER_FIXED_K_H_
#define ADP_SOLVER_FIXED_K_H_

#include <cstdint>
#include <optional>

#include "query/query.h"
#include "relational/database.h"
#include "solver/solution.h"

namespace adp {

/// Exact ADP(Q, D, k) for a full CQ and small k. Returns nullopt if
/// q is not full, k exceeds |Q(D)|, k > max_k, or the subset enumeration
/// would exceed `max_subsets`.
std::optional<AdpSolution> SolveFixedKFullCq(const ConjunctiveQuery& q,
                                             const Database& db,
                                             std::int64_t k, int max_k = 4,
                                             std::int64_t max_subsets =
                                                 2000000);

}  // namespace adp

#endif  // ADP_SOLVER_FIXED_K_H_
