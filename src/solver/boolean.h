// Boolean(Q, D, k) (§7.1): resilience of a boolean CQ via a minimum vertex
// cut. Requires a linear arrangement of the atoms (every triad-free query
// used in the paper has one; see dichotomy/linearize.h). Exogenous atoms
// participate with infinite node capacity — by Lemma 13 an optimal solution
// never deletes their tuples.

#ifndef ADP_SOLVER_BOOLEAN_H_
#define ADP_SOLVER_BOOLEAN_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "query/query.h"
#include "relational/database.h"
#include "solver/restrictions.h"
#include "solver/solution.h"

namespace adp {

/// Exact resilience result.
struct BooleanResult {
  std::int64_t resilience = 0;       // minimum tuples to make Q(D) false
  std::vector<TupleRef> cut;         // a witness of that size
};

/// Solves resilience exactly if a linear arrangement exists; nullopt
/// otherwise (the caller falls back to the greedy heuristic).
/// Precondition: q is boolean and Q(D) is true (has at least one join row).
/// Protected tuples (if any) receive infinite capacity; the result may then
/// have resilience >= kInfCapacity, meaning the query cannot be falsified
/// with the deletable tuples alone.
/// `linear_order`, if non-null, must be a valid linear arrangement of `q`
/// (e.g. cached in a DispatchPlan); the permutation search is then skipped.
std::optional<BooleanResult> SolveBooleanExact(
    const ConjunctiveQuery& q, const Database& db,
    const DeletionRestrictions* restrictions = nullptr,
    const std::vector<int>* linear_order = nullptr);

}  // namespace adp

#endif  // ADP_SOLVER_BOOLEAN_H_
