#include "solver/solution.h"

#include <algorithm>
#include <cstdint>

#include "query/transform.h"
#include "relational/join.h"

namespace adp {

std::int64_t CountRemovedOutputs(const ConjunctiveQuery& q, const Database& db,
                                 const std::vector<TupleRef>& tuples) {
  const ConjunctiveQuery* query = &q;
  const Database* data = &db;
  QueryDb pushed;
  if (q.HasSelections()) {
    pushed = ApplySelections(q, db);
    query = &pushed.query;
    data = &pushed.db;
  }

  const std::int64_t before = static_cast<std::int64_t>(
      CountOutputs(query->body(), query->head(), *data));

  // Translate root coordinates into masks over the (possibly derived)
  // instances via their origin ids.
  std::vector<std::vector<char>> removed(data->num_relations());
  for (std::size_t r = 0; r < data->num_relations(); ++r) {
    const RelationInstance& inst = data->rel(r);
    removed[r].assign(inst.size(), 0);
    const int root_rel =
        inst.root_relation() < 0 ? static_cast<int>(r) : inst.root_relation();
    std::vector<char> root_rows;  // mask over root row ids
    for (const TupleRef& ref : tuples) {
      if (ref.relation != root_rel) continue;
      if (root_rows.size() <= ref.row) root_rows.resize(ref.row + 1, 0);
      root_rows[ref.row] = 1;
    }
    if (root_rows.empty()) continue;
    for (std::size_t i = 0; i < inst.size(); ++i) {
      const TupleId o = inst.OriginOf(i);
      if (o < root_rows.size() && root_rows[o]) removed[r][i] = 1;
    }
  }
  const Database after = WithTuplesRemoved(*data, removed);
  const std::int64_t remaining = static_cast<std::int64_t>(
      CountOutputs(query->body(), query->head(), after));
  return before - remaining;
}

void NormalizeTupleRefs(std::vector<TupleRef>& tuples) {
  // Pack (relation, row) into one uint64 whose numeric order matches
  // TupleRef's lexicographic operator< — a flat radix-friendly integer sort
  // instead of struct comparisons. Relations are small non-negative body
  // indices, so the shift is lossless.
  std::vector<std::uint64_t> packed;
  packed.reserve(tuples.size());
  for (const TupleRef& t : tuples) {
    packed.push_back((static_cast<std::uint64_t>(
                          static_cast<std::uint32_t>(t.relation))
                      << 32) |
                     t.row);
  }
  std::sort(packed.begin(), packed.end());
  packed.erase(std::unique(packed.begin(), packed.end()), packed.end());
  tuples.clear();
  for (std::uint64_t p : packed) {
    tuples.push_back(TupleRef{static_cast<int>(p >> 32),
                              static_cast<TupleId>(p & 0xffffffffULL)});
  }
}

}  // namespace adp
