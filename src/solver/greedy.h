// GreedyForCQ (Algorithm 6): the general heuristic leaf for NP-hard queries.
// Repeatedly deletes the endogenous-relation tuple whose removal kills the
// most remaining outputs (exact profits via the ProvenanceIndex), until the
// target is met. Achieves the O(log k) set-cover ratio on full CQs; no
// guarantee under projections (§7.4).

#ifndef ADP_SOLVER_GREEDY_H_
#define ADP_SOLVER_GREEDY_H_

#include <cstdint>
#include <vector>

#include "query/query.h"
#include "relational/database.h"
#include "solver/compute_adp.h"

namespace adp {

/// The full deletion trajectory of one greedy run.
struct GreedyTrace {
  std::vector<TupleRef> picks;              // deletion order, root coords
  std::vector<std::int64_t> removed_after;  // cumulative outputs removed
  std::int64_t total_outputs = 0;           // |Q(D)| before any deletion
};

/// Runs GreedyForCQ until at least `target` outputs are removed (or no
/// deletable tuple can make further progress).
GreedyTrace RunGreedyForCQ(const ConjunctiveQuery& q, const Database& db,
                           std::int64_t target,
                           const DeletionRestrictions* restrictions = nullptr);

/// Wraps a greedy run as a (non-exact) recursion node with kmax
/// min(cap, |Q(D)|).
AdpNode GreedyNode(const ConjunctiveQuery& q, const Database& db,
                   std::int64_t cap, const AdpOptions& options);

}  // namespace adp

#endif  // ADP_SOLVER_GREEDY_H_
