#include "solver/fixed_k.h"

#include <algorithm>
#include <map>

#include "relational/join.h"

namespace adp {
namespace {

// Minimum number of masks (with one witness choice) covering `full`.
// Subset DP over the 2^k target space; masks is small (<= k*p distinct).
std::pair<int, std::vector<int>> MinMaskCover(
    const std::vector<std::uint32_t>& masks, std::uint32_t full) {
  const std::uint32_t space = full + 1;
  constexpr int kUnreached = 1 << 20;
  std::vector<int> best(space, kUnreached);
  std::vector<std::pair<std::uint32_t, int>> parent(space,
                                                    {0, -1});  // prev, mask id
  best[0] = 0;
  for (std::uint32_t covered = 0; covered < space; ++covered) {
    if (best[covered] >= kUnreached) continue;
    for (std::size_t i = 0; i < masks.size(); ++i) {
      const std::uint32_t next = (covered | masks[i]) & full;
      if (best[covered] + 1 < best[next]) {
        best[next] = best[covered] + 1;
        parent[next] = {covered, static_cast<int>(i)};
      }
    }
  }
  std::vector<int> picks;
  if (best[full] >= kUnreached) return {kUnreached, picks};
  for (std::uint32_t at = full; at != 0;) {
    picks.push_back(parent[at].second);
    at = parent[at].first;
  }
  return {best[full], picks};
}

}  // namespace

std::optional<AdpSolution> SolveFixedKFullCq(const ConjunctiveQuery& q,
                                             const Database& db,
                                             std::int64_t k, int max_k,
                                             std::int64_t max_subsets) {
  if (!q.IsFull() || q.HasSelections()) return std::nullopt;
  if (k > max_k || k < 0 || k >= 31) return std::nullopt;

  JoinResult join = FullJoin(q.body(), db, /*with_support=*/true);
  const std::int64_t rows = static_cast<std::int64_t>(join.NumRows());
  if (k > rows) return std::nullopt;

  AdpSolution solution;
  solution.output_count = rows;
  solution.exact = true;
  if (k == 0) {
    solution.removed_outputs = 0;
    return solution;
  }

  // Guard the (rows choose k) enumeration.
  double subsets = 1.0;
  for (std::int64_t i = 0; i < k; ++i) {
    subsets *= static_cast<double>(rows - i) / static_cast<double>(i + 1);
  }
  if (subsets > static_cast<double>(max_subsets)) return std::nullopt;

  const std::size_t p = q.body().size();
  std::int64_t best_cost = -1;
  std::vector<std::pair<int, TupleId>> best_tuples;

  std::vector<int> combo(static_cast<std::size_t>(k));
  for (std::int64_t i = 0; i < k; ++i) combo[i] = static_cast<int>(i);
  while (true) {
    // Candidate tuples: supporters of the chosen rows, with coverage masks.
    std::map<std::pair<int, TupleId>, std::uint32_t> coverage;
    for (std::int64_t j = 0; j < k; ++j) {
      for (std::size_t rel = 0; rel < p; ++rel) {
        const TupleId t = join.SupportOf(combo[j], rel);
        coverage[{static_cast<int>(rel), t}] |= std::uint32_t{1} << j;
      }
    }
    std::vector<std::uint32_t> masks;
    std::vector<std::pair<int, TupleId>> owners;
    for (const auto& [key, mask] : coverage) {
      masks.push_back(mask);
      owners.push_back(key);
    }
    const std::uint32_t full = (std::uint32_t{1} << k) - 1;
    const auto [cost, picks] = MinMaskCover(masks, full);
    if (best_cost < 0 || cost < best_cost) {
      best_cost = cost;
      best_tuples.clear();
      for (int i : picks) best_tuples.push_back(owners[i]);
    }

    int i = static_cast<int>(k) - 1;
    while (i >= 0 && combo[i] == rows - (k - i)) --i;
    if (i < 0) break;
    ++combo[i];
    for (std::int64_t jj = i + 1; jj < k; ++jj) combo[jj] = combo[jj - 1] + 1;
  }

  solution.cost = best_cost;
  for (const auto& [rel, t] : best_tuples) {
    const RelationInstance& inst = db.rel(rel);
    solution.tuples.push_back(TupleRef{inst.root_relation(),
                                       inst.OriginOf(t)});
  }
  NormalizeTupleRefs(solution.tuples);
  return solution;
}

}  // namespace adp
