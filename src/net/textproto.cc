#include "net/textproto.h"

#include <chrono>
#include <stdexcept>

#include "obs/metrics.h"
#include "obs/names.h"
#include "obs/trace.h"
#include "util/stopwatch.h"

namespace adp::net {

std::vector<std::string> SplitWs(const std::string& line) {
  std::vector<std::string> out;
  std::istringstream in(line);
  std::string tok;
  while (in >> tok) out.push_back(tok);
  return out;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

std::pair<std::string, RelationInstance> ParseRelationSpec(
    const std::string& spec) {
  const std::size_t eq = spec.find('=');
  if (eq == std::string::npos) {
    throw std::runtime_error("bad relation spec (missing '='): " + spec);
  }
  std::pair<std::string, RelationInstance> out;
  out.first = spec.substr(0, eq);
  std::string rows = spec.substr(eq + 1);
  std::istringstream in(rows);
  std::string row;
  while (std::getline(in, row, '/')) {
    if (row.empty()) continue;
    Tuple tuple;
    if (row != "()") {
      std::istringstream rin(row);
      std::string val;
      while (std::getline(rin, val, ',')) {
        tuple.push_back(static_cast<Value>(std::stoll(val)));
      }
    }
    out.second.Add(std::move(tuple));
  }
  return out;
}

ParsedDb ParseDbLine(const std::vector<std::string>& toks) {
  if (toks.size() < 2) throw std::runtime_error("DB needs a name");
  ParsedDb out;
  out.name = toks[1];
  for (std::size_t i = 2; i < toks.size(); ++i) {
    auto [name, inst] = ParseRelationSpec(toks[i]);
    out.db.relation_names.push_back(std::move(name));
    out.db.db.Append(std::move(inst));
  }
  return out;
}

namespace {

// Strict integer option value: rejects empty, trailing junk, and overflow.
std::int64_t ParseOptionInt(const std::string& tok, std::size_t prefix_len) {
  const std::string value = tok.substr(prefix_len);
  std::size_t pos = 0;
  std::int64_t out = 0;
  try {
    out = std::stoll(value, &pos);
  } catch (const std::exception&) {
    pos = 0;
  }
  if (value.empty() || pos != value.size()) {
    throw std::runtime_error("bad option value: " + tok);
  }
  return out;
}

}  // namespace

ParsedRequest ParseRequestLine(const std::vector<std::string>& toks,
                               const char* usage,
                               std::int64_t default_timeout_ms) {
  if (toks.size() < 3) throw std::runtime_error(usage);
  ParsedRequest out;
  out.db_name = toks[1];
  try {
    out.req.k = std::stoll(toks[2]);
  } catch (const std::exception&) {
    throw std::runtime_error("bad k: " + toks[2]);
  }
  if (default_timeout_ms > 0) {
    out.req.deadline = Now() + std::chrono::milliseconds(default_timeout_ms);
  }
  std::size_t i = 3;
  for (; i < toks.size() && toks[i].size() > 1 && toks[i][0] == '+'; ++i) {
    const std::string& tok = toks[i];
    if (tok == "+iw") {
      out.req.stream_intermediate_witnesses = true;
    } else if (tok.rfind("+p", 0) == 0) {
      out.req.priority = static_cast<int>(ParseOptionInt(tok, 2));
    } else if (tok.rfind("+d", 0) == 0) {
      const std::int64_t ms = ParseOptionInt(tok, 2);
      if (ms < 0) throw std::runtime_error("bad option value: " + tok);
      out.req.deadline = Now() + std::chrono::milliseconds(ms);
    } else {
      throw std::runtime_error("unknown option " + tok);
    }
  }
  if (i >= toks.size()) throw std::runtime_error(usage);
  for (std::size_t j = i; j < toks.size(); ++j) {
    if (j > i) out.query_text += ' ';
    out.query_text += toks[j];
  }
  out.req.query_text = out.query_text;
  return out;
}

std::size_t AppendTupleRefs(std::ostringstream& out,
                            const std::vector<TupleRef>& tuples,
                            const ConjunctiveQuery* query,
                            std::size_t max_bytes) {
  out << '[';
  std::size_t rendered = 0;
  for (std::size_t i = 0; i < tuples.size(); ++i) {
    if (max_bytes != 0 &&
        static_cast<std::size_t>(out.tellp()) > max_bytes) {
      break;
    }
    if (i > 0) out << ',';
    out << "[\"";
    if (query != nullptr && tuples[i].relation < query->num_relations()) {
      out << query->relation(tuples[i].relation).name;
    } else {
      out << tuples[i].relation;
    }
    out << "\"," << tuples[i].row << ']';
    ++rendered;
  }
  out << ']';
  return rendered;
}

std::string FormatResponseLine(std::int64_t id, const std::string& db_name,
                               std::int64_t k, const AdpResponse& r,
                               const ConjunctiveQuery* query,
                               std::size_t max_witness_bytes) {
  std::ostringstream out;
  out << "{\"req\":" << id << ",\"db\":\"" << JsonEscape(db_name)
      << "\",\"k\":" << k << ",\"status\":\""
      << StatusCodeName(r.status.code()) << "\"";
  if (!r.ok()) {
    out << ",\"error\":\"" << JsonEscape(r.status.message()) << "\"}";
    return out.str();
  }
  const AdpSolution& s = r.solution;
  // Infeasible solves carry the solver's kInfCost sentinel; surface -1.
  const std::int64_t cost = s.feasible ? s.cost : -1;
  out << ",\"feasible\":" << (s.feasible ? "true" : "false")
      << ",\"exact\":" << (s.exact ? "true" : "false") << ",\"cost\":" << cost
      << ",\"output_count\":" << s.output_count << ",\"tuples\":";
  const std::size_t rendered =
      AppendTupleRefs(out, s.tuples, query, max_witness_bytes);
  if (rendered < s.tuples.size()) {
    out << ",\"tuples_truncated\":true,\"tuples_total\":" << s.tuples.size();
  }
  out << ",\"cache_hit\":" << (r.plan_cache_hit ? "true" : "false")
      << ",\"deduped\":" << (r.deduped ? "true" : "false")
      << ",\"coalesced\":" << (r.coalesced ? "true" : "false")
      << ",\"plan_ms\":" << r.plan_ms << ",\"solve_ms\":" << r.solve_ms
      << ",\"total_ms\":" << r.total_ms << ",\"queue_ms\":" << r.queue_ms;
  if (r.trace != nullptr) {
    out << ",\"trace_spans\":" << r.trace->spans.size();
  }
  out << "}";
  return out.str();
}

std::string FormatStreamItemLine(std::int64_t id, const std::string& db_name,
                                 const StreamItem& item,
                                 const ConjunctiveQuery* query,
                                 std::size_t items_so_far) {
  std::ostringstream out;
  out << "{\"stream\":" << id << ",\"db\":\"" << JsonEscape(db_name) << '"';
  switch (item.kind) {
    case StreamItem::Kind::kProfile:
      out << ",\"k\":" << item.k
          << ",\"cost\":" << (item.feasible ? item.cost : -1)
          << ",\"feasible\":" << (item.feasible ? "true" : "false") << '}';
      break;
    case StreamItem::Kind::kWitnesses:
      out << ",\"k\":" << item.k << ",\"witnesses\":";
      AppendTupleRefs(out, item.witnesses, query);
      out << '}';
      break;
    case StreamItem::Kind::kEnd:
      out << ",\"end\":true,\"status\":\""
          << StatusCodeName(item.status.code()) << '"';
      if (!item.status.ok()) {
        out << ",\"error\":\"" << JsonEscape(item.status.message()) << '"';
      } else {
        out << ",\"feasible\":" << (item.feasible ? "true" : "false")
            << ",\"exact\":" << (item.exact ? "true" : "false")
            << ",\"cost\":" << (item.feasible ? item.cost : -1)
            << ",\"output_count\":" << item.output_count;
      }
      out << ",\"items\":" << items_so_far << ",\"plan_ms\":" << item.plan_ms
          << ",\"solve_ms\":" << item.solve_ms
          << ",\"total_ms\":" << item.total_ms
          << ",\"queue_ms\":" << item.queue_ms;
      if (item.trace != nullptr) {
        out << ",\"trace_spans\":" << item.trace->spans.size();
      }
      out << '}';
      break;
  }
  return out.str();
}

std::string FormatStatsJson(const AdpEngine& engine) {
  const EngineCounters c = engine.counters();
  const obs::HistogramSnapshot lat =
      engine.metrics().GetHistogram(obs::kMRequestLatencyMs).Snapshot();
  std::ostringstream out;
  out << "{\"stats\":{\"requests\":" << c.requests
      << ",\"failures\":" << c.failures << ",\"plan_hits\":" << c.plan_hits
      << ",\"plan_misses\":" << c.plan_misses
      << ",\"binding_hits\":" << c.binding_hits
      << ",\"binding_misses\":" << c.binding_misses
      << ",\"dedup_hits\":" << c.dedup_hits
      << ",\"coalesce_hits\":" << c.coalesce_hits
      << ",\"cancelled\":" << c.cancelled
      << ",\"deadline_expired\":" << c.deadline_expired
      << ",\"shed\":" << c.shed
      << ",\"sharded_universe_nodes\":" << c.sharded_universe_nodes
      << ",\"sharded_decompose_nodes\":" << c.sharded_decompose_nodes
      << ",\"streams_opened\":" << c.streams_opened
      << ",\"stream_items\":" << c.stream_items
      << ",\"stream_cancelled\":" << c.stream_cancelled
      << ",\"plan_cache_size\":" << c.plan_cache_size
      << ",\"databases\":" << c.databases
      << ",\"workers\":" << engine.num_workers()
      << ",\"latency_ms\":{\"count\":" << lat.count
      << ",\"p50\":" << lat.Quantile(0.50) << ",\"p95\":" << lat.Quantile(0.95)
      << ",\"p99\":" << lat.Quantile(0.99) << "}}}";
  return out.str();
}

}  // namespace adp::net
