// Versioned length-prefixed wire protocol of the ADP network front door.
//
// One frame on the wire is:
//
//   u32 length   little-endian; counts the type byte plus the payload
//   u8  type     FrameType
//   bytes        UTF-8 text payload (length - 1 bytes)
//
// Payloads are text on purpose: every verb reuses the line grammar and
// JSON rendering of src/net/textproto.h, so the TCP server and the stdin
// driver (examples/adp_server.cpp) speak the same request language and
// print the same result bodies. After the HELLO exchange, every
// client-to-server payload starts with a decimal correlation id; the
// server echoes that id as the first token of every frame it sends in
// response, so clients can pipeline requests and match interleaved
// replies. Full grammar, version negotiation, push-stream flow, and
// teardown semantics: docs/PROTOCOL.md (drift-checked against the
// FrameType enum below by tools/check_docs.py).

#ifndef ADP_NET_WIRE_H_
#define ADP_NET_WIRE_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>

namespace adp::net {

/// Protocol versions this build can speak. HELLO carries the client's
/// [min, max] range; the connection proceeds iff it intersects ours.
inline constexpr std::uint32_t kProtocolVersionMin = 1;
inline constexpr std::uint32_t kProtocolVersionMax = 1;

/// Hard cap on one frame's payload (type byte excluded). A length prefix
/// beyond this is a framing error: the server answers kError and closes
/// (resynchronizing inside a corrupt byte stream is not possible).
inline constexpr std::uint32_t kMaxFramePayload = 16u * 1024 * 1024;

/// Frame types. Client-to-server verbs sit below 0x80; server-to-client
/// frames have the high bit set; kError is the shared failure frame.
/// Values are wire-stable: never renumber, only append.
enum class FrameType : std::uint8_t {
  // client -> server
  kHello = 0x01,    // "min max" protocol version range; no correlation id
  kDb = 0x02,       // "<id> DB <name> <Rel>=rows ..." database registration
  kReq = 0x03,      // "<id> REQ <db> <k> [+opt ...] <query>"
  kStream = 0x04,   // "<id> STREAM <db> <k> [+opt ...] <query>"
  kPrepare = 0x05,  // "<id> PREPARE <query>" -> connection-scoped handle
  kExec = 0x06,     // "<id> EXEC <handle> <db> <k> [+opt ...]"
  kCancel = 0x07,   // "<id> CANCEL <target-id>" or "<id> CANCEL" (all)
  kStats = 0x08,    // "<id> STATS"
  kMetrics = 0x09,  // "<id> METRICS"
  kBye = 0x0A,      // "<id> BYE" graceful teardown

  // server -> client
  kHelloOk = 0x81,     // "version" — the negotiated protocol version
  kDbOk = 0x82,        // "<id> {\"db\":...}"
  kResult = 0x83,      // "<id> <result line>" (textproto FormatResponseLine)
  kStreamItem = 0x84,  // "<id> <item line>" pushed as the solve produces
  kStreamEnd = 0x85,   // "<id> <terminal item line>" always the last push
  kPrepared = 0x86,    // "<id> {\"prepared\":handle}"
  kCancelOk = 0x87,    // "<id> {\"cancelled\":n}"
  kStatsText = 0x88,   // "<id> <stats json>"
  kMetricsText = 0x89, // "<id> <Prometheus text>"
  kByeOk = 0x8A,       // "<id>" — server flushes and closes after this
  kError = 0xFF,       // "<id> <STATUS_NAME> <message>" (id 0 if unknown)
};

/// True for the type values the enum actually names (a byte off the wire
/// may be anything).
bool IsKnownFrameType(std::uint8_t type);

/// Splits a "<id> rest" payload: the leading decimal correlation id and
/// the remainder after one space (empty when the payload is just the id).
/// False when the payload does not start with a valid non-negative id.
bool SplitCorrelationId(const std::string& payload, std::int64_t* id,
                        std::string* rest);

/// One decoded frame.
struct Frame {
  FrameType type = FrameType::kError;
  std::string payload;
};

/// Serializes one frame onto `out` (append-only; callers batch frames into
/// one buffer per socket write). Returns false — leaving `out` untouched —
/// when `payload` exceeds kMaxFramePayload: such a frame could never be
/// decoded by a FrameReader, and its u32 length prefix would silently
/// truncate past 4 GiB. Callers must send a (small) error instead.
[[nodiscard]] bool AppendFrame(std::string& out, FrameType type,
                               const std::string& payload);

/// Incremental frame decoder over an arbitrarily-chunked byte stream.
/// Feed() bytes as they arrive, then Next() until empty. A length prefix
/// exceeding kMaxFramePayload + 1 poisons the reader (bad() becomes true
/// and Next() returns nothing): the stream cannot be resynchronized and
/// the connection must be dropped.
class FrameReader {
 public:
  /// Appends raw bytes from the socket.
  void Feed(const char* data, std::size_t n);

  /// The next complete frame, if one is buffered. Unknown type bytes are
  /// returned as-is (type preserved in the Frame) — the server answers
  /// kError per-frame and keeps the connection, since framing is intact.
  std::optional<Frame> Next();

  /// True once the stream is unrecoverable (oversized length prefix).
  bool bad() const { return bad_; }

 private:
  std::string buf_;
  std::size_t pos_ = 0;  // consumed prefix of buf_
  bool bad_ = false;
};

}  // namespace adp::net

#endif  // ADP_NET_WIRE_H_
