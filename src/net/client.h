// AdpNetClient: a small blocking client for the ADP wire protocol
// (src/net/wire.h, docs/PROTOCOL.md).
//
// Deliberately synchronous and single-threaded: it exists for the
// adp_netclient example, the loopback tests, and the network round-trip
// bench — callers that want pipelining hold several ids in flight and use
// WaitReply(), which reads frames off the socket and stashes the ones
// addressed to other ids until their turn.

#ifndef ADP_NET_CLIENT_H_
#define ADP_NET_CLIENT_H_

#include <cstdint>
#include <deque>
#include <optional>
#include <string>

#include "net/wire.h"

namespace adp::net {

class AdpNetClient {
 public:
  AdpNetClient() = default;
  ~AdpNetClient();

  AdpNetClient(const AdpNetClient&) = delete;
  AdpNetClient& operator=(const AdpNetClient&) = delete;
  AdpNetClient(AdpNetClient&& other) noexcept;
  AdpNetClient& operator=(AdpNetClient&& other) noexcept;

  /// Connects and completes the HELLO exchange. False on connect failure,
  /// version rejection, or an unexpected first frame; error() says why.
  bool Connect(const std::string& host, int port);

  /// Closes the socket (idempotent).
  void Close();

  bool connected() const { return fd_ >= 0; }

  /// Protocol version negotiated by Connect (0 before).
  std::uint32_t version() const { return version_; }

  /// Last transport/protocol error seen by this client.
  const std::string& error() const { return error_; }

  /// A fresh correlation id (1, 2, 3, ...).
  std::int64_t NextId() { return next_id_++; }

  /// Sends one frame with payload "<id> <body>" ("<id>" when body empty).
  /// False on a write error.
  bool Send(FrameType type, std::int64_t id, const std::string& body);

  /// Raw-payload variant (HELLO, malformed-frame tests).
  bool SendRaw(FrameType type, const std::string& payload);

  /// Sends raw bytes with no framing at all — for tests that need to
  /// inject truncated or corrupt data.
  bool SendBytes(const std::string& bytes);

  /// Blocks for the next frame from the server, drawing from the stash
  /// first. nullopt on EOF or transport error.
  std::optional<Frame> ReadFrame();

  /// Blocks until a frame whose payload is addressed to `id` arrives;
  /// frames for other ids are stashed for their own WaitReply/ReadFrame.
  /// kHelloOk (no id) never matches. nullopt on EOF or transport error.
  std::optional<Frame> WaitReply(std::int64_t id);

  /// Send + WaitReply in one step with a fresh id. The reply's correlation
  /// id prefix is stripped: `reply_body` receives the payload after
  /// "<id> ". nullopt on any failure.
  std::optional<Frame> Call(FrameType type, const std::string& body,
                            std::string* reply_body = nullptr);

 private:
  int fd_ = -1;
  FrameReader reader_;
  std::deque<Frame> stash_;
  std::int64_t next_id_ = 1;
  std::uint32_t version_ = 0;
  std::string error_;
};

}  // namespace adp::net

#endif  // ADP_NET_CLIENT_H_
