#include "net/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>
#ifdef __linux__
#include <sys/epoll.h>
#endif

#include <cerrno>
#include <cstring>
#include <mutex>
#include <sstream>
#include <utility>
#include <vector>

#include "net/textproto.h"
#include "net/wire.h"
#include "obs/metrics.h"
#include "obs/names.h"

// Platforms without the per-call flag (macOS/BSD) suppress SIGPIPE with
// the per-socket option below instead.
#ifndef MSG_NOSIGNAL
#define MSG_NOSIGNAL 0
#endif

namespace adp::net {

namespace {

bool SetNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  return flags >= 0 && fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

// A peer that resets mid-write must surface EPIPE, not a process-killing
// SIGPIPE. Writes pass MSG_NOSIGNAL; where that flag doesn't exist this
// arms the equivalent socket option.
void SuppressSigpipe(int fd) {
#ifdef SO_NOSIGPIPE
  const int one = 1;
  setsockopt(fd, SOL_SOCKET, SO_NOSIGPIPE, &one, sizeof one);
#else
  (void)fd;
#endif
}

/// kResult frames embed the whole witness set of a solve; bound the
/// rendered tuples well under kMaxFramePayload so no answer can become an
/// undeliverable frame (huge witness sets belong on STREAM, which
/// batches).
constexpr std::size_t kResultWitnessByteBudget = kMaxFramePayload / 2;

/// Frames `payload`, or — when it exceeds the wire cap — a small typed
/// kError carrying the same correlation id, so an oversized response can
/// never corrupt the stream or tear the connection down. Returns false on
/// that fallback.
bool AppendFrameOrError(std::string& out, FrameType type,
                        const std::string& payload) {
  if (AppendFrame(out, type, payload)) return true;
  std::int64_t id = 0;
  std::string rest;
  SplitCorrelationId(payload, &id, &rest);  // best effort; 0 if unparsable
  [[maybe_unused]] const bool ok = AppendFrame(
      out, FrameType::kError,
      std::to_string(id) + ' ' + StatusCodeName(StatusCode::kInternal) +
          " response exceeds the frame payload cap");
  return false;
}

}  // namespace

// --- Cross-thread plumbing ---------------------------------------------------

/// Self-pipe waker: engine-worker completion callbacks write one byte to
/// nudge a possibly-sleeping poll/epoll wait. Owned shared so callbacks
/// that outlive the server still have a live (if now pointless) fd.
struct AdpNetServer::Waker {
  int fds[2] = {-1, -1};

  bool Open() {
    if (pipe(fds) != 0) return false;
    return SetNonBlocking(fds[0]) && SetNonBlocking(fds[1]);
  }

  ~Waker() {
    if (fds[0] >= 0) close(fds[0]);
    if (fds[1] >= 0) close(fds[1]);
  }

  void Wake() {
    const char b = 1;
    // A full pipe already guarantees a pending wakeup; EAGAIN is success.
    [[maybe_unused]] ssize_t n = write(fds[1], &b, 1);
  }

  void Drain() {
    char buf[256];
    while (read(fds[0], buf, sizeof buf) > 0) {
    }
  }
};

/// The one piece of connection state engine-worker callbacks may touch:
/// completed responses are framed into `buf` under `mu`, and the event
/// loop moves them into the connection's write buffer. `dead` flips when
/// the connection closes so late completions drop their output instead of
/// appending to a buffer nobody will ever flush.
struct AdpNetServer::Outbox {
  std::mutex mu;
  std::string buf;
  bool dead = false;
};

// --- Poll backends -----------------------------------------------------------

class AdpNetServer::Poller {
 public:
  static constexpr unsigned kRead = 1, kWrite = 2, kErr = 4;

  virtual ~Poller() = default;

  /// Registers or updates the interest set of `fd`.
  virtual void Update(int fd, unsigned events) = 0;
  virtual void Remove(int fd) = 0;

  /// Blocks up to `timeout_ms`; appends (fd, ready-events) pairs.
  virtual void Wait(int timeout_ms,
                    std::vector<std::pair<int, unsigned>>* ready) = 0;
};

class AdpNetServer::PollPoller : public Poller {
 public:
  void Update(int fd, unsigned events) override { want_[fd] = events; }
  void Remove(int fd) override { want_.erase(fd); }

  void Wait(int timeout_ms,
            std::vector<std::pair<int, unsigned>>* ready) override {
    fds_.clear();
    for (const auto& [fd, events] : want_) {
      short mask = 0;
      if (events & kRead) mask |= POLLIN;
      if (events & kWrite) mask |= POLLOUT;
      fds_.push_back(pollfd{fd, mask, 0});
    }
    const int n = poll(fds_.data(), fds_.size(), timeout_ms);
    if (n <= 0) return;
    for (const pollfd& p : fds_) {
      unsigned events = 0;
      if (p.revents & POLLIN) events |= kRead;
      if (p.revents & POLLOUT) events |= kWrite;
      if (p.revents & (POLLERR | POLLHUP | POLLNVAL)) events |= kErr;
      if (events != 0) ready->emplace_back(p.fd, events);
    }
  }

 private:
  std::unordered_map<int, unsigned> want_;
  std::vector<pollfd> fds_;
};

#ifdef __linux__
class AdpNetServer::EpollPoller : public Poller {
 public:
  EpollPoller() : epfd_(epoll_create1(EPOLL_CLOEXEC)) {}
  ~EpollPoller() override {
    if (epfd_ >= 0) close(epfd_);
  }

  bool valid() const { return epfd_ >= 0; }

  void Update(int fd, unsigned events) override {
    auto it = want_.find(fd);
    if (it != want_.end() && it->second == events) return;  // no-op churn
    epoll_event ev{};
    ev.data.fd = fd;
    if (events & kRead) ev.events |= EPOLLIN;
    if (events & kWrite) ev.events |= EPOLLOUT;
    const int op = it == want_.end() ? EPOLL_CTL_ADD : EPOLL_CTL_MOD;
    if (epoll_ctl(epfd_, op, fd, &ev) == 0) want_[fd] = events;
  }

  void Remove(int fd) override {
    if (want_.erase(fd) > 0) epoll_ctl(epfd_, EPOLL_CTL_DEL, fd, nullptr);
  }

  void Wait(int timeout_ms,
            std::vector<std::pair<int, unsigned>>* ready) override {
    epoll_event evs[64];
    const int n = epoll_wait(epfd_, evs, 64, timeout_ms);
    for (int i = 0; i < n; ++i) {
      unsigned events = 0;
      if (evs[i].events & EPOLLIN) events |= kRead;
      if (evs[i].events & EPOLLOUT) events |= kWrite;
      if (evs[i].events & (EPOLLERR | EPOLLHUP)) events |= kErr;
      const int fd = evs[i].data.fd;  // copy out of the packed union
      if (events != 0) ready->emplace_back(fd, events);
    }
  }

 private:
  int epfd_;
  std::unordered_map<int, unsigned> want_;
};
#endif  // __linux__

// --- Per-connection state ----------------------------------------------------

struct AdpNetServer::Conn {
  int fd = -1;
  std::int64_t conn_id = 0;
  FrameReader reader;
  bool hello_done = false;
  bool closing = false;  // flush, then close (BYE / fatal protocol error)
  bool broken = false;   // hard socket error: close on the next loop sweep

  // Event-loop-owned write buffer; `outpos` is the flushed prefix.
  std::string outbuf;
  std::size_t outpos = 0;

  // Worker-thread handoff (see Outbox).
  std::shared_ptr<Outbox> outbox;

  // Connection-scoped namespaces: databases registered over this
  // connection, prepared handles, in-flight request tickets, open streams.
  std::unordered_map<std::string, DbId> dbs;
  std::unordered_map<std::int64_t, PreparedQuery> prepared;
  std::int64_t next_prepared = 1;
  std::unordered_map<std::int64_t, AdpTicket> tickets;

  struct StreamRun {
    std::int64_t id = 0;
    ResultStream stream;
    std::string db_name;
    std::shared_ptr<const CachedPlan> plan;  // renders relation names
    std::size_t items = 0;
  };
  std::vector<StreamRun> streams;

  std::size_t InflightNow() const {
    std::size_t n = streams.size();
    for (const auto& [id, ticket] : tickets) {
      if (!ticket.done()) ++n;
    }
    return n;
  }

  /// True while `id` still names an in-flight ticket or open stream.
  /// Finished tickets are retired every pump, so an id is reusable as
  /// soon as its reply has been framed.
  bool IdInFlight(std::int64_t id) const {
    if (tickets.count(id) > 0) return true;
    for (const auto& run : streams) {
      if (run.id == id) return true;
    }
    return false;
  }
};

// --- Server ------------------------------------------------------------------

AdpNetServer::AdpNetServer(AdpEngine& engine, NetServerConfig config)
    : engine_(engine),
      config_(std::move(config)),
      registry_(engine.metrics_shared()) {
  connections_total_ = &registry_->GetCounter(obs::kMNetConnections);
  frames_in_ = &registry_->GetCounter(obs::kMNetFramesIn);
  frames_out_ = &registry_->GetCounter(obs::kMNetFramesOut);
  protocol_errors_ = &registry_->GetCounter(obs::kMNetProtocolErrors);
  open_connections_ = &registry_->GetGauge(obs::kMNetOpenConnections);
  outbound_queue_bytes_ = &registry_->GetGauge(obs::kMNetOutboundQueueBytes);
  conn_inflight_ = &registry_->GetHistogram(obs::kMNetConnInflight);
}

AdpNetServer::~AdpNetServer() {
  Stop();
  if (listen_fd_ >= 0) close(listen_fd_);
}

Status AdpNetServer::Start() {
  if (started_) {
    return Status(StatusCode::kInvalidArgument, "server already started");
  }
  listen_fd_ = socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status(StatusCode::kInternal, "socket() failed");
  }
  const int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(config_.port));
  if (inet_pton(AF_INET, config_.host.c_str(), &addr.sin_addr) != 1) {
    return Status(StatusCode::kInvalidArgument,
                  "bad listen address " + config_.host);
  }
  if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    return Status(StatusCode::kInternal,
                  "bind " + config_.host + ":" +
                      std::to_string(config_.port) + " failed: " +
                      std::strerror(errno));
  }
  if (listen(listen_fd_, 128) != 0 || !SetNonBlocking(listen_fd_)) {
    return Status(StatusCode::kInternal, "listen() failed");
  }
  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
  port_ = ntohs(bound.sin_port);

  waker_ = std::make_shared<Waker>();
  if (!waker_->Open()) {
    return Status(StatusCode::kInternal, "waker pipe failed");
  }
#ifdef __linux__
  if (!config_.force_poll) {
    auto epoll = std::make_unique<EpollPoller>();
    if (epoll->valid()) poller_ = std::move(epoll);
  }
#endif
  if (poller_ == nullptr) poller_ = std::make_unique<PollPoller>();
  poller_->Update(listen_fd_, Poller::kRead);
  poller_->Update(waker_->fds[0], Poller::kRead);

  started_ = true;
  stop_.store(false);
  loop_ = std::thread([this] { Loop(); });
  return Status::Ok();
}

void AdpNetServer::Stop() {
  if (!started_) return;
  stop_.store(true);
  waker_->Wake();
  if (loop_.joinable()) loop_.join();
  // Close every connection from the (now dead) loop's seat: cancels
  // in-flight work and releases stream producers.
  std::vector<int> fds;
  fds.reserve(conns_.size());
  for (const auto& [fd, conn] : conns_) fds.push_back(fd);
  for (int fd : fds) CloseConn(fd);
  started_ = false;
}

void AdpNetServer::Loop() {
  std::vector<std::pair<int, unsigned>> ready;
  while (!stop_.load(std::memory_order_relaxed)) {
    bool streams_active = false;
    for (auto& [fd, conn] : conns_) {
      PumpConn(*conn);
      streams_active = streams_active || !conn->streams.empty();
    }
    // Closing connections that finished flushing — and connections whose
    // socket died mid-flush — go away now; collect first (CloseConn
    // mutates conns_, so it must never run inside an iteration).
    std::vector<int> finished;
    std::int64_t queued_bytes = 0;
    for (auto& [fd, conn] : conns_) {
      const std::size_t backlog = conn->outbuf.size() - conn->outpos;
      queued_bytes += static_cast<std::int64_t>(backlog);
      if (conn->broken || (conn->closing && backlog == 0)) {
        finished.push_back(fd);
        continue;
      }
      poller_->Update(fd,
                      Poller::kRead | (backlog > 0 ? Poller::kWrite : 0u));
    }
    outbound_queue_bytes_->Set(queued_bytes);
    for (int fd : finished) CloseConn(fd);

    // Streams have no completion callback into the loop — their items are
    // pulled — so poll briskly while any are open; otherwise sleep until a
    // socket or the waker fires.
    ready.clear();
    poller_->Wait(streams_active ? 2 : 200, &ready);

    for (const auto& [fd, events] : ready) {
      if (fd == waker_->fds[0]) {
        waker_->Drain();
        continue;
      }
      if (fd == listen_fd_) {
        AcceptAll();
        continue;
      }
      auto it = conns_.find(fd);
      if (it == conns_.end()) continue;
      if (events & Poller::kErr) {
        CloseConn(fd);
        continue;
      }
      if (events & Poller::kRead) ReadConn(*it->second);
      // kWrite: the pump at the top of the next iteration flushes; no
      // separate handling avoids double bookkeeping.
    }
  }
}

void AdpNetServer::AcceptAll() {
  for (;;) {
    const int fd = accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) return;  // EAGAIN (or transient error): try next round
    if (static_cast<int>(conns_.size()) >= config_.max_connections ||
        !SetNonBlocking(fd)) {
      close(fd);
      continue;
    }
    const int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    SuppressSigpipe(fd);
    auto conn = std::make_unique<Conn>();
    conn->fd = fd;
    conn->conn_id = next_conn_id_++;
    conn->outbox = std::make_shared<Outbox>();
    conns_[fd] = std::move(conn);
    poller_->Update(fd, Poller::kRead);
    connections_total_->Increment();
    open_connections_->Set(static_cast<std::int64_t>(conns_.size()));
  }
}

void AdpNetServer::ReadConn(Conn& conn) {
  char buf[64 * 1024];
  for (;;) {
    const ssize_t n = read(conn.fd, buf, sizeof buf);
    if (n > 0) {
      conn.reader.Feed(buf, static_cast<std::size_t>(n));
      if (static_cast<std::size_t>(n) < sizeof buf) break;
      continue;
    }
    if (n == 0) {  // peer closed
      CloseConn(conn.fd);
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    CloseConn(conn.fd);
    return;
  }
  while (std::optional<Frame> frame = conn.reader.Next()) {
    HandleFrame(conn, static_cast<std::uint8_t>(frame->type), frame->payload);
    if (conn.closing) break;  // no frame outlives a fatal protocol error
  }
  if (conn.reader.bad() && !conn.closing) {
    // Oversized/corrupt length prefix: framing is gone, the byte stream
    // cannot be resynchronized. Tell the client why, then hang up.
    protocol_errors_->Increment();
    SendError(conn, 0, StatusCode::kInvalidArgument,
              "unrecoverable framing error (length prefix out of range)");
    conn.closing = true;
  }
}

void AdpNetServer::SendFrame(Conn& conn, std::uint8_t type,
                             const std::string& payload) {
  if (!AppendFrameOrError(conn.outbuf, static_cast<FrameType>(type),
                          payload)) {
    protocol_errors_->Increment();
  }
  frames_out_->Increment();
}

void AdpNetServer::SendError(Conn& conn, std::int64_t id, StatusCode code,
                             const std::string& message) {
  std::ostringstream out;
  out << id << ' ' << StatusCodeName(code) << ' ' << message;
  SendFrame(conn, static_cast<std::uint8_t>(FrameType::kError), out.str());
}

void AdpNetServer::HandleFrame(Conn& conn, std::uint8_t type,
                               const std::string& payload) {
  frames_in_->Increment();

  if (!conn.hello_done) {
    if (static_cast<FrameType>(type) != FrameType::kHello) {
      protocol_errors_->Increment();
      SendError(conn, 0, StatusCode::kInvalidArgument,
                "first frame must be HELLO");
      conn.closing = true;
      return;
    }
    const std::vector<std::string> toks = SplitWs(payload);
    std::uint32_t lo = 0, hi = 0;
    try {
      if (toks.size() != 2) throw std::runtime_error("HELLO <min> <max>");
      lo = static_cast<std::uint32_t>(std::stoul(toks[0]));
      hi = static_cast<std::uint32_t>(std::stoul(toks[1]));
    } catch (const std::exception&) {
      protocol_errors_->Increment();
      SendError(conn, 0, StatusCode::kInvalidArgument,
                "malformed HELLO payload");
      conn.closing = true;
      return;
    }
    const std::uint32_t min_v = std::max(lo, kProtocolVersionMin);
    const std::uint32_t max_v = std::min(hi, kProtocolVersionMax);
    if (lo > hi || min_v > max_v) {
      protocol_errors_->Increment();
      SendError(conn, 0, StatusCode::kInvalidArgument,
                "protocol version mismatch: server speaks " +
                    std::to_string(kProtocolVersionMin) + ".." +
                    std::to_string(kProtocolVersionMax));
      conn.closing = true;
      return;
    }
    conn.hello_done = true;
    SendFrame(conn, static_cast<std::uint8_t>(FrameType::kHelloOk),
              std::to_string(max_v));
    return;
  }

  std::int64_t id = 0;
  std::string rest;
  if (!SplitCorrelationId(payload, &id, &rest)) {
    protocol_errors_->Increment();
    SendError(conn, 0, StatusCode::kInvalidArgument,
              "payload must start with a correlation id");
    return;  // framing is intact; the connection survives
  }

  try {
    const std::vector<std::string> toks = SplitWs(rest);
    switch (static_cast<FrameType>(type)) {
      case FrameType::kDb: {
        ParsedDb parsed = ParseDbLine(toks);
        const DbId fresh = engine_.RegisterDatabase(std::move(parsed.db));
        auto [dit, inserted] = conn.dbs.emplace(parsed.name, fresh);
        if (!inserted) {
          // Re-registering a name displaces the old instance; release it
          // so repeated DB frames cannot grow engine memory without bound.
          engine_.UnregisterDatabase(dit->second);
          dit->second = fresh;
        }
        SendFrame(conn, static_cast<std::uint8_t>(FrameType::kDbOk),
                  std::to_string(id) + " {\"db\":\"" +
                      JsonEscape(parsed.name) + "\"}");
        break;
      }
      case FrameType::kReq: {
        if (conn.IdInFlight(id)) {
          throw std::runtime_error("correlation id " + std::to_string(id) +
                                   " already in flight");
        }
        ParsedRequest parsed =
            ParseRequestLine(toks, "REQ <db> <k> [+opt ...] <query>",
                             config_.default_timeout_ms);
        auto it = conn.dbs.find(parsed.db_name);
        if (it == conn.dbs.end()) {
          throw std::runtime_error("unknown database " + parsed.db_name);
        }
        parsed.req.db = it->second;
        conn_inflight_->Observe(static_cast<double>(conn.InflightNow()));
        const std::int64_t k = parsed.req.k;
        AdpTicket ticket = engine_.SubmitAsync(
            std::move(parsed.req),
            [engine = &engine_, outbox = conn.outbox, waker = waker_,
             frames_out = frames_out_, id, db_name = parsed.db_name, k,
             query_text = parsed.query_text](AdpResponse resp) {
              std::shared_ptr<const CachedPlan> plan;
              if (resp.ok()) {
                AdpRequest probe;
                probe.query_text = query_text;
                plan = engine->PlanFor(probe);
              }
              const std::string line = FormatResponseLine(
                  id, db_name, k, resp, plan ? &plan->query : nullptr,
                  kResultWitnessByteBudget);
              std::string framed;
              AppendFrameOrError(framed, FrameType::kResult,
                                 std::to_string(id) + ' ' + line);
              {
                std::lock_guard<std::mutex> lock(outbox->mu);
                if (outbox->dead) return;
                outbox->buf += framed;
              }
              frames_out->Increment();
              waker->Wake();
            });
        conn.tickets[id] = std::move(ticket);
        break;
      }
      case FrameType::kStream: {
        if (conn.IdInFlight(id)) {
          throw std::runtime_error("correlation id " + std::to_string(id) +
                                   " already in flight");
        }
        ParsedRequest parsed =
            ParseRequestLine(toks, "STREAM <db> <k> [+opt ...] <query>",
                             config_.default_timeout_ms);
        auto it = conn.dbs.find(parsed.db_name);
        if (it == conn.dbs.end()) {
          throw std::runtime_error("unknown database " + parsed.db_name);
        }
        parsed.req.db = it->second;
        conn_inflight_->Observe(static_cast<double>(conn.InflightNow()));
        Conn::StreamRun run;
        run.id = id;
        run.db_name = parsed.db_name;
        run.plan = engine_.PlanFor(parsed.req);  // names; null on bad query
        run.stream = engine_.StreamAdp(std::move(parsed.req));
        conn.streams.push_back(std::move(run));
        break;
      }
      case FrameType::kPrepare: {
        if (toks.size() < 2 || toks[0] != "PREPARE") {
          throw std::runtime_error("PREPARE <query>");
        }
        std::string query_text;
        for (std::size_t i = 1; i < toks.size(); ++i) {
          if (i > 1) query_text += ' ';
          query_text += toks[i];
        }
        StatusOr<PreparedQuery> prepared = engine_.Prepare(query_text);
        if (!prepared.ok()) {
          protocol_errors_->Increment();
          SendError(conn, id, prepared.status().code(),
                    prepared.status().message());
          break;
        }
        const std::int64_t handle = conn.next_prepared++;
        conn.prepared[handle] = std::move(prepared).value();
        SendFrame(conn, static_cast<std::uint8_t>(FrameType::kPrepared),
                  std::to_string(id) + " {\"prepared\":" +
                      std::to_string(handle) + "}");
        break;
      }
      case FrameType::kExec: {
        if (conn.IdInFlight(id)) {
          throw std::runtime_error("correlation id " + std::to_string(id) +
                                   " already in flight");
        }
        // EXEC <handle> <db> <k> [+opt ...]
        if (toks.size() < 4 || toks[0] != "EXEC") {
          throw std::runtime_error("EXEC <handle> <db> <k> [+opt ...]");
        }
        const std::int64_t handle = std::stoll(toks[1]);
        auto pit = conn.prepared.find(handle);
        if (pit == conn.prepared.end()) {
          throw std::runtime_error("unknown prepared handle " + toks[1]);
        }
        // Rewrite as a REQ-shaped line so option parsing stays shared;
        // the query slot is a placeholder (the prepared handle wins).
        std::vector<std::string> req_toks = {"EXEC", toks[2], toks[3]};
        req_toks.insert(req_toks.end(), toks.begin() + 4, toks.end());
        req_toks.push_back("-");
        ParsedRequest parsed = ParseRequestLine(
            req_toks, "EXEC <handle> <db> <k> [+opt ...]",
            config_.default_timeout_ms);
        auto it = conn.dbs.find(parsed.db_name);
        if (it == conn.dbs.end()) {
          throw std::runtime_error("unknown database " + parsed.db_name);
        }
        parsed.req.query_text.clear();
        parsed.req.prepared = pit->second;
        parsed.req.db = it->second;
        conn_inflight_->Observe(static_cast<double>(conn.InflightNow()));
        std::shared_ptr<const CachedPlan> plan = pit->second.plan();
        const std::int64_t k = parsed.req.k;
        AdpTicket ticket = engine_.SubmitAsync(
            std::move(parsed.req),
            [outbox = conn.outbox, waker = waker_, frames_out = frames_out_,
             id, db_name = parsed.db_name, k, plan](AdpResponse resp) {
              const std::string line = FormatResponseLine(
                  id, db_name, k, resp, plan ? &plan->query : nullptr,
                  kResultWitnessByteBudget);
              std::string framed;
              AppendFrameOrError(framed, FrameType::kResult,
                                 std::to_string(id) + ' ' + line);
              {
                std::lock_guard<std::mutex> lock(outbox->mu);
                if (outbox->dead) return;
                outbox->buf += framed;
              }
              frames_out->Increment();
              waker->Wake();
            });
        conn.tickets[id] = std::move(ticket);
        break;
      }
      case FrameType::kCancel: {
        // CANCEL [<target-id>]: a specific in-flight request/stream, or
        // everything still pending on this connection.
        if (toks.empty() || toks[0] != "CANCEL" || toks.size() > 2) {
          throw std::runtime_error("CANCEL [<target-id>]");
        }
        int cancelled = 0;
        if (toks.size() == 2) {
          const std::int64_t target = std::stoll(toks[1]);
          auto tit = conn.tickets.find(target);
          if (tit != conn.tickets.end() && tit->second.Cancel()) ++cancelled;
          for (auto& run : conn.streams) {
            if (run.id == target) {
              run.stream.Cancel();
              ++cancelled;
            }
          }
        } else {
          for (auto& [tid, ticket] : conn.tickets) {
            if (ticket.Cancel()) ++cancelled;
          }
          for (auto& run : conn.streams) {
            run.stream.Cancel();
            ++cancelled;
          }
        }
        SendFrame(conn, static_cast<std::uint8_t>(FrameType::kCancelOk),
                  std::to_string(id) + " {\"cancelled\":" +
                      std::to_string(cancelled) + "}");
        break;
      }
      case FrameType::kStats: {
        SendFrame(conn, static_cast<std::uint8_t>(FrameType::kStatsText),
                  std::to_string(id) + ' ' + FormatStatsJson(engine_));
        break;
      }
      case FrameType::kMetrics: {
        std::ostringstream out;
        engine_.WriteMetricsText(out);
        SendFrame(conn, static_cast<std::uint8_t>(FrameType::kMetricsText),
                  std::to_string(id) + ' ' + out.str());
        break;
      }
      case FrameType::kBye: {
        SendFrame(conn, static_cast<std::uint8_t>(FrameType::kByeOk),
                  std::to_string(id));
        conn.closing = true;
        break;
      }
      default: {
        protocol_errors_->Increment();
        SendError(conn, id, StatusCode::kInvalidArgument,
                  IsKnownFrameType(type)
                      ? "frame type not valid client-to-server"
                      : "unknown frame type " + std::to_string(type));
        break;
      }
    }
  } catch (const std::exception& e) {
    // Malformed payload with intact framing: report and carry on — the
    // next frame parses fresh.
    protocol_errors_->Increment();
    SendError(conn, id, StatusCode::kInvalidArgument, e.what());
  }
}

void AdpNetServer::PumpConn(Conn& conn) {
  // 1. Completed responses framed by engine workers.
  {
    std::lock_guard<std::mutex> lock(conn.outbox->mu);
    if (!conn.outbox->buf.empty()) {
      conn.outbuf += conn.outbox->buf;
      conn.outbox->buf.clear();
    }
  }
  // 2. Retire finished tickets so CANCEL and the inflight histogram see
  //    only live work.
  std::erase_if(conn.tickets,
                [](const auto& kv) { return kv.second.done(); });
  // 3. Push stream items while the outbound buffer has headroom. A slow
  //    reader stalls here; the stream's bounded buffer then blocks the
  //    producing worker — that is the backpressure path.
  for (auto& run : conn.streams) {
    while (conn.outbuf.size() - conn.outpos < config_.outbound_buffer_limit) {
      std::optional<StreamItem> item = run.stream.TryNext();
      if (!item.has_value()) break;
      ++run.items;
      const std::string line = FormatStreamItemLine(
          run.id, run.db_name, *item,
          run.plan ? &run.plan->query : nullptr, run.items);
      const bool is_end = item->kind == StreamItem::Kind::kEnd;
      SendFrame(conn,
                static_cast<std::uint8_t>(is_end ? FrameType::kStreamEnd
                                                 : FrameType::kStreamItem),
                std::to_string(run.id) + ' ' + line);
    }
  }
  std::erase_if(conn.streams,
                [](const auto& run) { return run.stream.done(); });
  // 4. Opportunistic flush: most responses leave in the same loop
  //    iteration that produced them, without waiting for a POLLOUT round.
  FlushConn(conn);
}

void AdpNetServer::FlushConn(Conn& conn) {
  if (conn.broken) return;
  while (conn.outpos < conn.outbuf.size()) {
    const ssize_t n = send(conn.fd, conn.outbuf.data() + conn.outpos,
                           conn.outbuf.size() - conn.outpos, MSG_NOSIGNAL);
    if (n > 0) {
      conn.outpos += static_cast<std::size_t>(n);
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    if (errno == EINTR) continue;
    // Broken pipe mid-write: mark the connection dead and let the loop's
    // sweep tear it down. Closing here would invalidate the conns_
    // iterator of the Loop()/PumpConn caller — and free this very Conn
    // out from under it.
    conn.broken = true;
    return;
  }
  conn.outbuf.clear();
  conn.outpos = 0;
}

void AdpNetServer::CloseConn(int fd) {
  auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  Conn& conn = *it->second;
  // Disconnect releases every worker serving this connection: streams are
  // closed (a blocked producer wakes and unwinds), pending requests are
  // cancelled (queued ones never solve).
  for (auto& run : conn.streams) run.stream.Close();
  for (auto& [id, ticket] : conn.tickets) ticket.Cancel();
  // Connection-scoped databases go with the connection (in-flight holders
  // keep the data alive until they unwind); without this, reconnect loops
  // would accumulate registrations in the engine forever.
  for (const auto& [name, db] : conn.dbs) engine_.UnregisterDatabase(db);
  {
    std::lock_guard<std::mutex> lock(conn.outbox->mu);
    conn.outbox->dead = true;
    conn.outbox->buf.clear();
  }
  poller_->Remove(fd);
  close(fd);
  conns_.erase(it);
  open_connections_->Set(static_cast<std::int64_t>(conns_.size()));
}

}  // namespace adp::net
