// Shared text-protocol parsing and JSON rendering for the two ADP front
// ends: the stdin line driver (examples/adp_server.cpp) and the TCP server
// (src/net/server.cc). Both parse the same command grammar and emit the
// same JSON-ish result lines through these helpers, so the front ends
// cannot drift — tests/textproto_test.cc regression-tests the grammar and
// tests/net_test.cc proves the network path renders answers identical to
// direct AdpEngine calls.
//
// Command grammar (one command per line; '#' starts a comment):
//
//   DB <name> <Rel>=<row>/<row>/... <Rel>=...
//   REQ <db> <k> [+opt ...] <query>
//   STREAM <db> <k> [+opt ...] <query>
//
// Option tokens sit between <k> and the query text, each starting with
// '+' (the query head never does):
//
//   +p<N>   scheduling priority N (integer, may be negative); higher runs
//           first on the worker pool (AdpRequest::priority)
//   +d<MS>  per-request deadline MS milliseconds from now, overriding the
//           front end's default timeout
//   +iw     stream witnesses at intermediate k targets too
//           (AdpRequest::stream_intermediate_witnesses; STREAM only)
//
// Parse failures throw std::runtime_error with a caller-facing message.

#ifndef ADP_NET_TEXTPROTO_H_
#define ADP_NET_TEXTPROTO_H_

#include <cstdint>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "engine/engine.h"
#include "engine/request.h"
#include "engine/result_stream.h"

namespace adp::net {

/// Whitespace-splits one command line into tokens.
std::vector<std::string> SplitWs(const std::string& line);

/// Escapes '"' and '\' for embedding in a JSON string literal.
std::string JsonEscape(const std::string& s);

/// Parses one "R1=11,21/12,22" relation spec into (name, instance).
/// "()" denotes the empty tuple (vacuum instance); "R1=" alone is an empty
/// instance.
std::pair<std::string, RelationInstance> ParseRelationSpec(
    const std::string& spec);

/// A parsed "DB <name> <spec> ..." line.
struct ParsedDb {
  std::string name;
  NamedDatabase db;
};

/// Parses DB-line tokens (toks[0] == "DB").
ParsedDb ParseDbLine(const std::vector<std::string>& toks);

/// The shared "<CMD> <db> <k> [+opt ...] <query...>" tail of REQ and
/// STREAM lines. `req.db` is left unresolved (kInvalidDbId): front ends
/// own the name -> DbId namespace (global for the stdin driver,
/// per-connection for the TCP server) and resolve `db_name` themselves.
struct ParsedRequest {
  std::string db_name;
  std::string query_text;
  AdpRequest req;
};

/// Parses REQ/STREAM-line tokens. `usage` is the error text for a too-short
/// line; `default_timeout_ms` > 0 sets a deadline that many ms from now
/// unless a +d token overrides it.
ParsedRequest ParseRequestLine(const std::vector<std::string>& toks,
                               const char* usage,
                               std::int64_t default_timeout_ms);

/// Renders witness tuples as [["Rel",row],...], naming relations through
/// `query` when available (falling back to the relation index). A nonzero
/// `max_bytes` stops appending once `out` has grown past that budget
/// (overshooting by at most one tuple ref); returns how many tuples were
/// rendered.
std::size_t AppendTupleRefs(std::ostringstream& out,
                            const std::vector<TupleRef>& tuples,
                            const ConjunctiveQuery* query,
                            std::size_t max_bytes = 0);

/// One REQ result line: {"req":ID,"db":"NAME","k":K,"status":...}. A
/// nonzero `max_witness_bytes` bounds the rendered witness list (framed
/// transports cap one response's size); a capped line carries
/// "tuples_truncated":true plus the full count as "tuples_total".
std::string FormatResponseLine(std::int64_t id, const std::string& db_name,
                               std::int64_t k, const AdpResponse& r,
                               const ConjunctiveQuery* query,
                               std::size_t max_witness_bytes = 0);

/// One STREAM item line, keyed {"stream":ID,...}. `items_so_far` counts
/// items delivered including this one (reported on the terminal line).
std::string FormatStreamItemLine(std::int64_t id, const std::string& db_name,
                                 const StreamItem& item,
                                 const ConjunctiveQuery* query,
                                 std::size_t items_so_far);

/// The STATS command body: engine counters + request-latency quantiles.
std::string FormatStatsJson(const AdpEngine& engine);

}  // namespace adp::net

#endif  // ADP_NET_TEXTPROTO_H_
