#include "net/wire.h"

namespace adp::net {

bool IsKnownFrameType(std::uint8_t type) {
  switch (static_cast<FrameType>(type)) {
    case FrameType::kHello:
    case FrameType::kDb:
    case FrameType::kReq:
    case FrameType::kStream:
    case FrameType::kPrepare:
    case FrameType::kExec:
    case FrameType::kCancel:
    case FrameType::kStats:
    case FrameType::kMetrics:
    case FrameType::kBye:
    case FrameType::kHelloOk:
    case FrameType::kDbOk:
    case FrameType::kResult:
    case FrameType::kStreamItem:
    case FrameType::kStreamEnd:
    case FrameType::kPrepared:
    case FrameType::kCancelOk:
    case FrameType::kStatsText:
    case FrameType::kMetricsText:
    case FrameType::kByeOk:
    case FrameType::kError:
      return true;
  }
  return false;
}

bool SplitCorrelationId(const std::string& payload, std::int64_t* id,
                        std::string* rest) {
  std::size_t i = 0;
  while (i < payload.size() && payload[i] >= '0' && payload[i] <= '9') ++i;
  if (i == 0 || i > 18) return false;  // empty, or overflows int64
  if (i < payload.size() && payload[i] != ' ') return false;
  *id = 0;
  for (std::size_t j = 0; j < i; ++j) *id = *id * 10 + (payload[j] - '0');
  *rest = i < payload.size() ? payload.substr(i + 1) : std::string();
  return true;
}

bool AppendFrame(std::string& out, FrameType type, const std::string& payload) {
  if (payload.size() > kMaxFramePayload) return false;
  const std::uint32_t len = static_cast<std::uint32_t>(payload.size()) + 1;
  char prefix[4];
  prefix[0] = static_cast<char>(len & 0xFF);
  prefix[1] = static_cast<char>((len >> 8) & 0xFF);
  prefix[2] = static_cast<char>((len >> 16) & 0xFF);
  prefix[3] = static_cast<char>((len >> 24) & 0xFF);
  out.append(prefix, 4);
  out.push_back(static_cast<char>(type));
  out.append(payload);
  return true;
}

void FrameReader::Feed(const char* data, std::size_t n) {
  if (bad_) return;
  // Compact lazily: drop the consumed prefix once it dominates the buffer,
  // so steady-state streaming doesn't reallocate per frame.
  if (pos_ > 4096 && pos_ * 2 > buf_.size()) {
    buf_.erase(0, pos_);
    pos_ = 0;
  }
  buf_.append(data, n);
}

std::optional<Frame> FrameReader::Next() {
  if (bad_) return std::nullopt;
  if (buf_.size() - pos_ < 4) return std::nullopt;
  // The prefix is little-endian on the wire; reassemble portably.
  const unsigned char* b =
      reinterpret_cast<const unsigned char*>(buf_.data() + pos_);
  const std::uint32_t len =
      static_cast<std::uint32_t>(b[0]) |
        (static_cast<std::uint32_t>(b[1]) << 8) |
        (static_cast<std::uint32_t>(b[2]) << 16) |
        (static_cast<std::uint32_t>(b[3]) << 24);
  if (len == 0 || len > kMaxFramePayload + 1) {
    bad_ = true;
    return std::nullopt;
  }
  if (buf_.size() - pos_ < 4u + len) return std::nullopt;
  Frame frame;
  frame.type = static_cast<FrameType>(
      static_cast<std::uint8_t>(buf_[pos_ + 4]));
  frame.payload.assign(buf_, pos_ + 5, len - 1);
  pos_ += 4u + len;
  if (pos_ == buf_.size()) {
    buf_.clear();
    pos_ = 0;
  }
  return frame;
}

}  // namespace adp::net
