// AdpNetServer: the concurrent TCP front door of AdpEngine.
//
// One event-loop thread multiplexes every connection with non-blocking
// sockets — epoll on Linux, poll elsewhere (or with
// NetServerConfig::force_poll) — and hands parsed requests to the engine's
// own worker pool via SubmitAsync/StreamAdp. No thread-per-connection:
// solve completions are appended to a per-connection outbox by the worker
// that finished them and flushed by the loop when the socket is writable.
//
// Stream push and backpressure: a STREAM verb opens a ResultStream and the
// loop pumps ResultStream::TryNext into kStreamItem frames while the
// connection's outbound buffer is below
// NetServerConfig::outbound_buffer_limit. A slow client therefore stops
// the pump; the stream's own bounded buffer then blocks the producing
// worker — end-to-end backpressure with zero extra threads. A client that
// disconnects mid-stream gets its streams Close()d, which releases that
// worker immediately.
//
// Admission control rides on the engine: EngineConfig::max_queue_depth
// sheds excess requests with kOverloaded, per-request +p / +d options map
// to AdpRequest::priority / deadline, and the pool dequeues
// priority-then-EDF (engine/thread_pool.h).
//
// Protocol, framing, and teardown semantics: docs/PROTOCOL.md.
// Everything network-visible is counted on the engine's metrics registry
// (adp_net_* — src/obs/names.h, docs/OBSERVABILITY.md).
//
// The engine must outlive the server. Server lifecycle is
// Start() -> Stop() (idempotent; the destructor implies Stop).

#ifndef ADP_NET_SERVER_H_
#define ADP_NET_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>

#include "engine/engine.h"
#include "engine/status.h"

namespace adp::net {

struct NetServerConfig {
  /// Listen address (IPv4 dotted quad).
  std::string host = "127.0.0.1";

  /// Listen port; 0 binds an ephemeral port (read it back via port()).
  int port = 0;

  /// Accepted connections beyond this are closed immediately.
  int max_connections = 256;

  /// Per-connection outbound buffer bound: stream pumping pauses while the
  /// buffer holds at least this many bytes (backpressure on slow readers).
  /// Request/error responses are exempt — they are small and must not be
  /// lost to a full buffer.
  std::size_t outbound_buffer_limit = 4u * 1024 * 1024;

  /// Default deadline for REQ/STREAM/EXEC in milliseconds from arrival
  /// (0 = none). A +d option on the request line overrides it.
  std::int64_t default_timeout_ms = 0;

  /// Use the portable poll() backend even where epoll is available
  /// (exercised by tests so both backends stay correct).
  bool force_poll = false;
};

class AdpNetServer {
 public:
  /// `engine` must outlive this server.
  AdpNetServer(AdpEngine& engine, NetServerConfig config = {});
  ~AdpNetServer();

  AdpNetServer(const AdpNetServer&) = delete;
  AdpNetServer& operator=(const AdpNetServer&) = delete;

  /// Binds, listens, and spawns the event loop. Fails with kInternal when
  /// the address cannot be bound. Call once.
  Status Start();

  /// Stops the loop, closes every connection (cancelling its in-flight
  /// requests and streams), and joins. Idempotent.
  void Stop();

  /// The bound port (the real one when config.port was 0). 0 before
  /// Start().
  int port() const { return port_; }

  const NetServerConfig& config() const { return config_; }

 private:
  struct Conn;
  struct Outbox;
  struct Waker;
  class Poller;
  class PollPoller;
#ifdef __linux__
  class EpollPoller;
#endif

  void Loop();
  void AcceptAll();
  void ReadConn(Conn& conn);
  void HandleFrame(Conn& conn, std::uint8_t type, const std::string& payload);
  void PumpConn(Conn& conn);
  void FlushConn(Conn& conn);
  void CloseConn(int fd);
  void SendError(Conn& conn, std::int64_t id, StatusCode code,
                 const std::string& message);
  void SendFrame(Conn& conn, std::uint8_t type, const std::string& payload);

  AdpEngine& engine_;
  const NetServerConfig config_;

  // Held shared so frames appended by engine-worker callbacks can count
  // themselves even if the server is being torn down.
  std::shared_ptr<obs::MetricsRegistry> registry_;
  obs::Counter* connections_total_ = nullptr;
  obs::Counter* frames_in_ = nullptr;
  obs::Counter* frames_out_ = nullptr;
  obs::Counter* protocol_errors_ = nullptr;
  obs::Gauge* open_connections_ = nullptr;
  obs::Gauge* outbound_queue_bytes_ = nullptr;
  obs::Histogram* conn_inflight_ = nullptr;

  int listen_fd_ = -1;
  int port_ = 0;
  std::shared_ptr<Waker> waker_;
  std::unique_ptr<Poller> poller_;
  std::atomic<bool> stop_{false};
  bool started_ = false;
  std::thread loop_;

  // Event-loop-thread-only state.
  std::unordered_map<int, std::unique_ptr<Conn>> conns_;
  std::int64_t next_conn_id_ = 1;
};

}  // namespace adp::net

#endif  // ADP_NET_SERVER_H_
