#include "net/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

// See src/net/server.cc: writes must surface EPIPE, not raise SIGPIPE in
// the embedding application.
#ifndef MSG_NOSIGNAL
#define MSG_NOSIGNAL 0
#endif

namespace adp::net {

AdpNetClient::~AdpNetClient() { Close(); }

AdpNetClient::AdpNetClient(AdpNetClient&& other) noexcept
    : fd_(other.fd_),
      reader_(std::move(other.reader_)),
      stash_(std::move(other.stash_)),
      next_id_(other.next_id_),
      version_(other.version_),
      error_(std::move(other.error_)) {
  other.fd_ = -1;
}

AdpNetClient& AdpNetClient::operator=(AdpNetClient&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
    reader_ = std::move(other.reader_);
    stash_ = std::move(other.stash_);
    next_id_ = other.next_id_;
    version_ = other.version_;
    error_ = std::move(other.error_);
  }
  return *this;
}

void AdpNetClient::Close() {
  if (fd_ >= 0) {
    close(fd_);
    fd_ = -1;
  }
}

bool AdpNetClient::Connect(const std::string& host, int port) {
  Close();
  fd_ = socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    error_ = "socket() failed";
    return false;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    error_ = "bad address " + host;
    Close();
    return false;
  }
  if (connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    error_ = "connect failed: " + std::string(std::strerror(errno));
    Close();
    return false;
  }
  const int one = 1;
  setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
#ifdef SO_NOSIGPIPE
  setsockopt(fd_, SOL_SOCKET, SO_NOSIGPIPE, &one, sizeof one);
#endif

  if (!SendRaw(FrameType::kHello, std::to_string(kProtocolVersionMin) + ' ' +
                                      std::to_string(kProtocolVersionMax))) {
    return false;
  }
  std::optional<Frame> reply = ReadFrame();
  if (!reply.has_value()) {
    if (error_.empty()) error_ = "connection closed during HELLO";
    return false;
  }
  if (reply->type != FrameType::kHelloOk) {
    error_ = "HELLO rejected: " + reply->payload;
    Close();
    return false;
  }
  try {
    version_ = static_cast<std::uint32_t>(std::stoul(reply->payload));
  } catch (const std::exception&) {
    error_ = "bad HELLO_OK payload: " + reply->payload;
    Close();
    return false;
  }
  return true;
}

bool AdpNetClient::SendBytes(const std::string& bytes) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n =
        send(fd_, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    error_ = "write failed";
    Close();
    return false;
  }
  return true;
}

bool AdpNetClient::SendRaw(FrameType type, const std::string& payload) {
  std::string framed;
  if (!AppendFrame(framed, type, payload)) {
    error_ = "payload exceeds the frame payload cap";
    return false;
  }
  return SendBytes(framed);
}

bool AdpNetClient::Send(FrameType type, std::int64_t id,
                        const std::string& body) {
  std::string payload = std::to_string(id);
  if (!body.empty()) {
    payload += ' ';
    payload += body;
  }
  return SendRaw(type, payload);
}

std::optional<Frame> AdpNetClient::ReadFrame() {
  if (!stash_.empty()) {
    Frame frame = std::move(stash_.front());
    stash_.pop_front();
    return frame;
  }
  char buf[64 * 1024];
  for (;;) {
    if (std::optional<Frame> frame = reader_.Next()) return frame;
    if (reader_.bad()) {
      error_ = "framing error from server";
      Close();
      return std::nullopt;
    }
    if (fd_ < 0) return std::nullopt;
    const ssize_t n = read(fd_, buf, sizeof buf);
    if (n > 0) {
      reader_.Feed(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n == 0) {
      error_ = "connection closed by server";
    } else {
      error_ = "read failed";
    }
    Close();
    return std::nullopt;
  }
}

std::optional<Frame> AdpNetClient::WaitReply(std::int64_t id) {
  // Stash first: an earlier WaitReply may already have read our frame.
  for (auto it = stash_.begin(); it != stash_.end(); ++it) {
    std::int64_t got = 0;
    std::string rest;
    if (SplitCorrelationId(it->payload, &got, &rest) && got == id) {
      Frame frame = std::move(*it);
      stash_.erase(it);
      return frame;
    }
  }
  for (;;) {
    // Bypass the stash (ReadFrame would re-pop what we just inspected).
    std::optional<Frame> frame;
    {
      char buf[64 * 1024];
      for (;;) {
        if ((frame = reader_.Next())) break;
        if (reader_.bad()) {
          error_ = "framing error from server";
          Close();
          return std::nullopt;
        }
        if (fd_ < 0) return std::nullopt;
        const ssize_t n = read(fd_, buf, sizeof buf);
        if (n > 0) {
          reader_.Feed(buf, static_cast<std::size_t>(n));
          continue;
        }
        if (n < 0 && errno == EINTR) continue;
        error_ = n == 0 ? "connection closed by server" : "read failed";
        Close();
        return std::nullopt;
      }
    }
    std::int64_t got = 0;
    std::string rest;
    if (SplitCorrelationId(frame->payload, &got, &rest) && got == id) {
      return frame;
    }
    stash_.push_back(std::move(*frame));
  }
}

std::optional<Frame> AdpNetClient::Call(FrameType type, const std::string& body,
                                        std::string* reply_body) {
  const std::int64_t id = NextId();
  if (!Send(type, id, body)) return std::nullopt;
  std::optional<Frame> reply = WaitReply(id);
  if (reply.has_value() && reply_body != nullptr) {
    std::int64_t got = 0;
    SplitCorrelationId(reply->payload, &got, reply_body);
  }
  return reply;
}

}  // namespace adp::net
