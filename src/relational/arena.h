// Bump allocation for columnar tuple storage.
//
// A RelationInstance owns one Arena and carves every code/origin column out
// of it, so a whole instance frees in O(#chunks) and column growth never
// round-trips the general-purpose allocator per row. ArenaVec is the
// column primitive: a raw (data, size, capacity) triple over trivially
// copyable elements whose growth path allocates from the owning arena and
// memcpys — arena memory is never reclaimed individually, so outgrown
// blocks are simply abandoned until the arena dies.

#ifndef ADP_RELATIONAL_ARENA_H_
#define ADP_RELATIONAL_ARENA_H_

#include <cstddef>
#include <cstring>
#include <memory>
#include <type_traits>
#include <vector>

namespace adp {

/// Chunked bump allocator. Allocations live until the arena is destroyed.
class Arena {
 public:
  Arena() = default;
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Returns `bytes` of storage aligned for any column element type.
  void* Allocate(std::size_t bytes) {
    bytes = (bytes + kAlign - 1) & ~(kAlign - 1);
    if (bytes > remaining_) Refill(bytes);
    char* out = head_;
    head_ += bytes;
    remaining_ -= bytes;
    return out;
  }

  /// Bytes handed out plus slack in the open chunk (capacity footprint).
  std::size_t BytesReserved() const { return reserved_; }

 private:
  static constexpr std::size_t kAlign = alignof(std::max_align_t);
  static constexpr std::size_t kChunkBytes = 64 * 1024;

  void Refill(std::size_t bytes) {
    const std::size_t chunk = bytes > kChunkBytes ? bytes : kChunkBytes;
    chunks_.push_back(std::make_unique<char[]>(chunk));
    head_ = chunks_.back().get();
    remaining_ = chunk;
    reserved_ += chunk;
  }

  std::vector<std::unique_ptr<char[]>> chunks_;
  char* head_ = nullptr;
  std::size_t remaining_ = 0;
  std::size_t reserved_ = 0;
};

/// Growable array whose storage comes from an Arena passed at each mutation
/// (the vec itself stays a POD-ish triple, cheap to move around inside the
/// owning instance). Elements must be trivially copyable: growth and bulk
/// append are memcpy.
template <typename T>
class ArenaVec {
  static_assert(std::is_trivially_copyable_v<T>,
                "ArenaVec relies on memcpy growth");

 public:
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  const T* data() const { return data_; }
  T* data() { return data_; }
  T operator[](std::size_t i) const { return data_[i]; }
  T& operator[](std::size_t i) { return data_[i]; }
  const T* begin() const { return data_; }
  const T* end() const { return data_ + size_; }

  void Reserve(Arena& arena, std::size_t n) {
    if (n > cap_) Grow(arena, n);
  }

  void PushBack(Arena& arena, T v) {
    if (size_ == cap_) Grow(arena, size_ + 1);
    data_[size_++] = v;
  }

  /// Appends `n` elements from `src` (memcpy fast path for gathers).
  void AppendN(Arena& arena, const T* src, std::size_t n) {
    if (size_ + n > cap_) Grow(arena, size_ + n);
    if (n > 0) std::memcpy(data_ + size_, src, n * sizeof(T));
    size_ += n;
  }

  void Clear() { size_ = 0; }

 private:
  void Grow(Arena& arena, std::size_t need) {
    std::size_t cap = cap_ == 0 ? 16 : cap_ * 2;
    if (cap < need) cap = need;
    T* fresh = static_cast<T*>(arena.Allocate(cap * sizeof(T)));
    if (size_ > 0) std::memcpy(fresh, data_, size_ * sizeof(T));
    data_ = fresh;
    cap_ = cap;
  }

  T* data_ = nullptr;
  std::size_t size_ = 0;
  std::size_t cap_ = 0;
};

}  // namespace adp

#endif  // ADP_RELATIONAL_ARENA_H_
