// Hash-group index over dictionary-code columns.
//
// Groups the rows of ONE RelationInstance by their code combination on a
// set of key columns. Because codes biject values within a column, grouping
// by codes is grouping by values — but only within the instance (or a
// dictionary-sharing derivative) the index was built over. Probing from
// another instance must translate values through this instance's
// dictionaries first (ColumnDict::Lookup); raw codes are NOT comparable
// across relations.
//
// The index is open-addressing over 32-bit group ids and resolves
// collisions by comparing key codes against each group's representative
// row, so no key tuples are ever materialized. Groups are numbered in
// first-seen row order; each group's row list is in ascending row order.
// This is the substrate of Universe partitioning (Algorithm 4) and of the
// join build side.

#ifndef ADP_RELATIONAL_GROUP_INDEX_H_
#define ADP_RELATIONAL_GROUP_INDEX_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "relational/relation.h"

namespace adp {

class HashGroupIndex {
 public:
  /// Builds the index over `inst` grouped by `key_cols` (column positions).
  /// With no key columns every row lands in one group. `inst` must outlive
  /// the index and must not be appended to while the index is in use.
  HashGroupIndex(const RelationInstance& inst, std::vector<int> key_cols);

  std::size_t num_groups() const { return groups_.size(); }

  /// Rows of group `g`, in ascending row order.
  const std::vector<TupleId>& rows(std::size_t g) const { return groups_[g]; }

  /// A row carrying the group's key (the first one seen).
  TupleId representative(std::size_t g) const { return rep_[g]; }

  /// The group key decoded to values, in `key_cols` order.
  Tuple KeyValues(std::size_t g) const;

  /// Group holding key code combination `codes` (one code per key column,
  /// in `key_cols` order, expressed in THIS instance's dictionaries), or -1.
  std::int64_t FindByCodes(const Code* codes) const;

 private:
  const RelationInstance* inst_;
  std::vector<int> key_cols_;
  std::vector<std::vector<TupleId>> groups_;
  std::vector<TupleId> rep_;
  std::vector<std::uint32_t> table_;  // slot -> group id (kEmptySlot = free)
  std::size_t mask_ = 0;
};

}  // namespace adp

#endif  // ADP_RELATIONAL_GROUP_INDEX_H_
