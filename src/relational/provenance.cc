#include "relational/provenance.h"

#include <unordered_map>

#include "util/hash.h"

namespace adp {

ProvenanceIndex::ProvenanceIndex(const std::vector<RelationSchema>& body,
                                 AttrSet head, const Database& db) {
  JoinResult join = FullJoin(body, db, /*with_support=*/true);
  const std::size_t p = body.size();
  const std::size_t rows = join.NumRows();

  tuple_rows_.resize(p);
  for (std::size_t i = 0; i < p; ++i) {
    tuple_rows_[i].resize(db.rel(i).size());
  }

  AttrSet all;
  for (AttrId a : join.attrs) all.Add(a);
  const AttrSet proj = head.Intersect(all);

  row_group_.resize(rows);
  row_alive_.assign(rows, 1);
  std::unordered_map<Tuple, std::uint32_t, VecHash> group_of;
  group_of.reserve(rows * 2);
  for (std::size_t r = 0; r < rows; ++r) {
    Tuple key = join.Project(r, proj);
    auto [it, inserted] =
        group_of.try_emplace(std::move(key),
                             static_cast<std::uint32_t>(group_size_.size()));
    if (inserted) group_size_.push_back(0);
    row_group_[r] = it->second;
    ++group_size_[it->second];
    for (std::size_t i = 0; i < p; ++i) {
      tuple_rows_[i][join.SupportOf(r, i)].push_back(
          static_cast<std::uint32_t>(r));
    }
  }
  group_alive_ = group_size_;
  alive_groups_ = static_cast<std::int64_t>(group_size_.size());

  scratch_count_.assign(group_size_.size(), 0);
  scratch_version_.assign(group_size_.size(), 0);
}

std::int64_t ProvenanceIndex::Profit(int rel, TupleId t) const {
  ++version_;
  const auto& rows = tuple_rows_[rel][t];
  std::int64_t profit = 0;
  for (std::uint32_t r : rows) {
    if (!row_alive_[r]) continue;
    const std::uint32_t g = row_group_[r];
    if (scratch_version_[g] != version_) {
      scratch_version_[g] = version_;
      scratch_count_[g] = 0;
    }
    if (++scratch_count_[g] == group_alive_[g]) ++profit;
  }
  return profit;
}

std::int64_t ProvenanceIndex::InitialProfit(int rel, TupleId t) const {
  // With every row alive, a group dies iff all of its rows contain `t`.
  ++version_;
  const auto& rows = tuple_rows_[rel][t];
  std::int64_t profit = 0;
  for (std::uint32_t r : rows) {
    const std::uint32_t g = row_group_[r];
    if (scratch_version_[g] != version_) {
      scratch_version_[g] = version_;
      scratch_count_[g] = 0;
    }
    if (++scratch_count_[g] == group_size_[g]) ++profit;
  }
  return profit;
}

std::int64_t ProvenanceIndex::Delete(int rel, TupleId t) {
  std::int64_t died = 0;
  for (std::uint32_t r : tuple_rows_[rel][t]) {
    if (!row_alive_[r]) continue;
    row_alive_[r] = 0;
    const std::uint32_t g = row_group_[r];
    if (--group_alive_[g] == 0) {
      ++died;
      --alive_groups_;
    }
  }
  return died;
}

bool ProvenanceIndex::IsRelevant(int rel, TupleId t) const {
  for (std::uint32_t r : tuple_rows_[rel][t]) {
    if (row_alive_[r]) return true;
  }
  return false;
}

}  // namespace adp
