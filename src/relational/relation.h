// Relation schemas and relation instances.

#ifndef ADP_RELATIONAL_RELATION_H_
#define ADP_RELATIONAL_RELATION_H_

#include <cstddef>
#include <string>
#include <vector>

#include "relational/tuple.h"
#include "util/attr_set.h"

namespace adp {

/// Schema of one relation appearing in a query body: a name plus an ordered
/// list of attribute ids (the column order of its instances).
struct RelationSchema {
  std::string name;
  std::vector<AttrId> attrs;

  /// The (unordered) set of attributes.
  AttrSet attr_set() const {
    AttrSet s;
    for (AttrId a : attrs) s.Add(a);
    return s;
  }

  /// True if the relation has no attributes (a "vacuum" relation, §3.1).
  bool vacuum() const { return attrs.empty(); }

  /// Position of attribute `a` in the column order, or -1 if absent.
  int ColumnOf(AttrId a) const {
    for (std::size_t i = 0; i < attrs.size(); ++i) {
      if (attrs[i] == a) return static_cast<int>(i);
    }
    return -1;
  }
};

/// An instance of one relation. Tuples are stored densely; transforms that
/// derive sub-instances (selection pushdown, universal-attribute removal,
/// Universe partitioning) carry `origin` ids so that any solution computed on
/// the transformed instance can be reported against the root database.
class RelationInstance {
 public:
  RelationInstance() = default;

  /// Number of tuples.
  std::size_t size() const { return tuples_.size(); }
  bool empty() const { return tuples_.empty(); }

  const Tuple& tuple(std::size_t i) const { return tuples_[i]; }
  const std::vector<Tuple>& tuples() const { return tuples_; }

  /// Root-database row id of local tuple `i` (identity in a root instance).
  TupleId OriginOf(std::size_t i) const {
    return origin_.empty() ? static_cast<TupleId>(i) : origin_[i];
  }

  /// Index of the corresponding relation in the root query's body.
  int root_relation() const { return root_relation_; }
  void set_root_relation(int r) { root_relation_ = r; }

  /// Appends a tuple whose origin is itself (root instances).
  void Add(Tuple t) { tuples_.push_back(std::move(t)); }

  /// Appends a tuple derived from root row `origin` (transformed instances).
  void AddWithOrigin(Tuple t, TupleId origin);

  /// Removes duplicate tuples, keeping the first occurrence (and its
  /// origin). Instances handed to the solvers must be duplicate-free.
  void Dedup();

  /// Reserves storage for `n` tuples.
  void Reserve(std::size_t n) { tuples_.reserve(n); }

 private:
  std::vector<Tuple> tuples_;
  std::vector<TupleId> origin_;  // empty => identity mapping
  int root_relation_ = -1;
};

}  // namespace adp

#endif  // ADP_RELATIONAL_RELATION_H_
