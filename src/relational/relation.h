// Relation schemas and columnar relation instances.
//
// Storage layout (docs/RELATIONAL.md): a RelationInstance is column-major.
// Each column holds dictionary codes (`Code`, uint32) in an arena-backed
// vector; the per-column dictionary maps codes to the original values.
// Equality, grouping, and deduplication therefore compare 32-bit codes
// instead of materialized rows, and the dictionary size of a column is its
// exact distinct count — per-column stats the planner can read for free.
// (Plan choice by those stats stays on ROADMAP: plans are cached per query
// fingerprint, not per binding, so a cached plan cannot depend on them.)
//
// Dictionaries are append-only and shared: deriving an instance by gather
// (selection, partition, tuple removal) copies code columns and bumps the
// dictionary refcount instead of re-interning values. Existing codes never
// change meaning, so sharing is safe across the sharded solver's threads as
// long as nobody appends to the source instance mid-solve (bound snapshots
// are immutable by contract). Mutating appends copy-on-write a dictionary
// that is still shared. Codes are only comparable within one column of one
// instance-chain — never compare raw codes across relations.

#ifndef ADP_RELATIONAL_RELATION_H_
#define ADP_RELATIONAL_RELATION_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "relational/arena.h"
#include "relational/tuple.h"
#include "util/attr_set.h"

namespace adp {

/// Schema of one relation appearing in a query body: a name plus an ordered
/// list of attribute ids (the column order of its instances).
struct RelationSchema {
  std::string name;
  std::vector<AttrId> attrs;

  /// The (unordered) set of attributes.
  AttrSet attr_set() const {
    AttrSet s;
    for (AttrId a : attrs) s.Add(a);
    return s;
  }

  /// True if the relation has no attributes (a "vacuum" relation, §3.1).
  bool vacuum() const { return attrs.empty(); }

  /// Position of attribute `a` in the column order, or -1 if absent.
  int ColumnOf(AttrId a) const {
    for (std::size_t i = 0; i < attrs.size(); ++i) {
      if (attrs[i] == a) return static_cast<int>(i);
    }
    return -1;
  }
};

/// Dictionary code of a value within one column. 32 bits: a column cannot
/// hold more distinct values than rows, and rows are capped by TupleId.
using Code = std::uint32_t;

/// Append-only value dictionary of one column: `values[code]` is the
/// original value, `index` the reverse map. Codes are assigned in first-seen
/// order and never change meaning, which is what makes sharing a dictionary
/// across derived instances sound.
struct ColumnDict {
  std::vector<Value> values;
  std::unordered_map<Value, Code> index;

  std::size_t size() const { return values.size(); }

  /// Code of `v`, interning it if new.
  Code Intern(Value v) {
    auto [it, inserted] = index.try_emplace(v, static_cast<Code>(values.size()));
    if (inserted) values.push_back(v);
    return it->second;
  }

  /// Code of `v`, or -1 if `v` was never interned (a probe against a value
  /// absent from the dictionary can skip the data scan entirely).
  std::int64_t Lookup(Value v) const {
    auto it = index.find(v);
    return it == index.end() ? -1 : static_cast<std::int64_t>(it->second);
  }
};

/// Thrown when an append would push an instance past MaxRows() — TupleId is
/// 32-bit and silently truncated row ids would corrupt origin tracking. The
/// engine surfaces this as Status kInvalidArgument from BindDatabase.
class TupleLimitError : public std::length_error {
 public:
  using std::length_error::length_error;
};

class TupleView;

/// An instance of one relation, stored column-major with per-column
/// dictionary encoding. Transforms that derive sub-instances (selection
/// pushdown, universal-attribute removal, Universe partitioning) carry
/// `origin` ids so that any solution computed on the transformed instance
/// can be reported against the root database.
class RelationInstance {
 public:
  RelationInstance();
  ~RelationInstance();
  RelationInstance(const RelationInstance& other);
  RelationInstance& operator=(const RelationInstance& other);
  RelationInstance(RelationInstance&&) noexcept;
  RelationInstance& operator=(RelationInstance&&) noexcept;

  /// Number of tuples.
  std::size_t size() const { return num_rows_; }
  bool empty() const { return num_rows_ == 0; }

  /// Number of columns (0 until the first append fixes it).
  std::size_t arity() const { return cols_.size(); }

  /// Materializes row `i` as a row-major Tuple. Compatibility shim for cold
  /// paths and tests; hot loops should use ValueAt/CodeAt or view.
  Tuple tuple(std::size_t i) const;

  /// Zero-copy accessor for row `i`.
  TupleView view(std::size_t i) const;

  /// Value at (row, col), decoded through the column dictionary.
  Value ValueAt(std::size_t row, std::size_t col) const;

  /// Dictionary code at (row, col). Only comparable against codes of the
  /// same column of this instance (or one sharing its dictionary).
  Code CodeAt(std::size_t row, std::size_t col) const;

  /// The dictionary of column `col` (probe with ColumnDict::Lookup).
  const ColumnDict& dict(std::size_t col) const;

  /// Exact number of distinct values in column `col` — the dictionary size,
  /// maintained for free by interning. NOTE: cached plans are keyed per
  /// query fingerprint, not per binding, so plan choice cannot consume this
  /// yet (see ROADMAP: cost-based linearization).
  std::size_t DistinctInColumn(std::size_t col) const;

  /// Root-database row id of local tuple `i` (identity in a root instance).
  TupleId OriginOf(std::size_t i) const {
    return origin_.empty() ? static_cast<TupleId>(i) : origin_[i];
  }

  /// Index of the corresponding relation in the root query's body.
  int root_relation() const { return root_relation_; }
  void set_root_relation(int r) { root_relation_ = r; }

  /// Appends a tuple whose origin is itself (root instances).
  void Add(Tuple t);

  /// Appends a tuple derived from root row `origin` (transformed instances).
  void AddWithOrigin(Tuple t, TupleId origin);

  /// Appends one row from a caller-owned buffer of `n` values with identity
  /// origin — the bulk-load path (CSV, workload builders): no per-row Tuple
  /// allocation, one dictionary probe per value.
  void AppendRow(const Value* vals, std::size_t n);

  /// Appends `rows` of `src`, keeping only `kept_cols` (source column
  /// positions, in output order). Shares the source dictionaries and gathers
  /// the raw codes — no re-interning, no value materialization; origins
  /// follow the source rows. The overload without `kept_cols` keeps every
  /// column. `src` must not be appended to concurrently.
  void AppendGathered(const RelationInstance& src,
                      const std::vector<TupleId>& rows,
                      const std::vector<int>& kept_cols);
  void AppendGathered(const RelationInstance& src,
                      const std::vector<TupleId>& rows);

  /// Removes duplicate tuples, keeping the first occurrence (and its
  /// origin). Instances handed to the solvers must be duplicate-free.
  /// Compares code rows — codes biject values within a column, so code-row
  /// equality is value-row equality.
  void Dedup();

  /// Reserves storage for `n` tuples (effective once arity is known).
  void Reserve(std::size_t n);

  /// Current append capacity: appends that would exceed it throw
  /// TupleLimitError. Defaults to the TupleId ceiling (2^32 - 1).
  static std::uint64_t MaxRows();

  /// Test hook: lowers/restores the MaxRows ceiling; returns the previous
  /// value so tests can RAII-restore it.
  static std::uint64_t OverrideMaxRowsForTest(std::uint64_t n);

 private:
  struct Column {
    ArenaVec<Code> codes;
    std::shared_ptr<ColumnDict> dict;
  };

  // The owning arena, created lazily on first append.
  Arena& ArenaRef();
  // Fixes the column count on first append; throws on arity mismatch.
  void EnsureArity(std::size_t n);
  // Throws TupleLimitError if `extra` more rows would pass MaxRows().
  void CheckCapacity(std::size_t extra) const;
  // Dictionary of column `c`, cloned first if still shared (copy-on-write);
  // only mutating appends call this.
  ColumnDict& MutableDict(std::size_t c);
  void AppendRowImpl(const Value* vals, std::size_t n, TupleId origin,
                     bool explicit_origin);

  std::unique_ptr<Arena> arena_;
  std::vector<Column> cols_;
  ArenaVec<TupleId> origin_;  // empty => identity mapping
  std::size_t num_rows_ = 0;
  std::size_t reserve_hint_ = 0;
  int root_relation_ = -1;
};

/// A non-owning (instance, row) handle: tuple semantics without
/// materialization. Valid while the instance is alive and un-appended.
class TupleView {
 public:
  TupleView() = default;
  TupleView(const RelationInstance* inst, TupleId row);

  std::size_t size() const;
  Value operator[](std::size_t col) const;

  /// Materializes the row.
  Tuple ToTuple() const;

  /// The row id within the owning instance.
  TupleId row() const { return row_; }

 private:
  const RelationInstance* inst_ = nullptr;
  TupleId row_ = 0;
};

inline TupleView::TupleView(const RelationInstance* inst, TupleId row)
    : inst_(inst), row_(row) {}

inline Value RelationInstance::ValueAt(std::size_t row,
                                       std::size_t col) const {
  const Column& c = cols_[col];
  return c.dict->values[c.codes[row]];
}

inline Code RelationInstance::CodeAt(std::size_t row, std::size_t col) const {
  return cols_[col].codes[row];
}

inline const ColumnDict& RelationInstance::dict(std::size_t col) const {
  return *cols_[col].dict;
}

inline std::size_t RelationInstance::DistinctInColumn(std::size_t col) const {
  return cols_[col].dict->values.size();
}

inline TupleView RelationInstance::view(std::size_t i) const {
  return TupleView(this, static_cast<TupleId>(i));
}

inline std::size_t TupleView::size() const { return inst_->arity(); }

inline Value TupleView::operator[](std::size_t col) const {
  return inst_->ValueAt(row_, col);
}

inline Tuple TupleView::ToTuple() const { return inst_->tuple(row_); }

}  // namespace adp

#endif  // ADP_RELATIONAL_RELATION_H_
