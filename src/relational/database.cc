#include "relational/database.h"

namespace adp {

Database WithTuplesRemoved(const Database& db,
                           const std::vector<std::vector<char>>& removed) {
  Database out;
  for (std::size_t r = 0; r < db.num_relations(); ++r) {
    const RelationInstance& in = db.rel(r);
    RelationInstance copy;
    copy.set_root_relation(in.root_relation());
    copy.Reserve(in.size());
    for (std::size_t i = 0; i < in.size(); ++i) {
      if (r < removed.size() && i < removed[r].size() && removed[r][i]) {
        continue;
      }
      copy.AddWithOrigin(in.tuple(i), in.OriginOf(i));
    }
    out.Append(std::move(copy));
  }
  return out;
}

}  // namespace adp
