#include "relational/database.h"

namespace adp {

Database WithTuplesRemoved(const Database& db,
                           const std::vector<std::vector<char>>& removed) {
  Database out;
  std::vector<TupleId> keep;
  for (std::size_t r = 0; r < db.num_relations(); ++r) {
    const RelationInstance& in = db.rel(r);
    RelationInstance copy;
    copy.set_root_relation(in.root_relation());
    keep.clear();
    keep.reserve(in.size());
    for (std::size_t i = 0; i < in.size(); ++i) {
      if (r < removed.size() && i < removed[r].size() && removed[r][i]) {
        continue;
      }
      keep.push_back(static_cast<TupleId>(i));
    }
    // Gather: shares `in`'s dictionaries and copies only the surviving
    // code rows; origins are preserved.
    copy.AppendGathered(in, keep);
    out.Append(std::move(copy));
  }
  return out;
}

}  // namespace adp
