#include "relational/join.h"

#include <algorithm>
#include <unordered_set>

#include "relational/group_index.h"
#include "util/hash.h"
#include "util/saturating.h"

namespace adp {
namespace {

// Chooses a join order: start from the smallest relation; repeatedly append
// the relation sharing the most attributes with what has been joined so far
// (ties broken by smaller instance), falling back to any remaining relation
// (cross product) when the body is disconnected.
std::vector<int> JoinOrder(const std::vector<RelationSchema>& body,
                           const Database& db) {
  const int p = static_cast<int>(body.size());
  std::vector<int> order;
  std::vector<char> used(p, 0);
  int first = 0;
  for (int i = 1; i < p; ++i) {
    if (db.rel(i).size() < db.rel(first).size()) first = i;
  }
  order.push_back(first);
  used[first] = 1;
  AttrSet seen = body[first].attr_set();
  for (int step = 1; step < p; ++step) {
    int best = -1;
    int best_shared = -1;
    for (int i = 0; i < p; ++i) {
      if (used[i]) continue;
      int shared = body[i].attr_set().Intersect(seen).Size();
      if (shared > best_shared ||
          (shared == best_shared &&
           db.rel(i).size() < db.rel(best).size())) {
        best = i;
        best_shared = shared;
      }
    }
    order.push_back(best);
    used[best] = 1;
    seen = seen.Union(body[best].attr_set());
  }
  return order;
}

}  // namespace

int JoinResult::ColumnOf(AttrId a) const {
  for (std::size_t i = 0; i < attrs.size(); ++i) {
    if (attrs[i] == a) return static_cast<int>(i);
  }
  return -1;
}

Tuple JoinResult::Project(std::size_t row, AttrSet set) const {
  Tuple out;
  out.reserve(set.Size());
  for (AttrId a : set) {
    out.push_back(rows[row][ColumnOf(a)]);
  }
  return out;
}

JoinResult FullJoin(const std::vector<RelationSchema>& body,
                    const Database& db, bool with_support) {
  const std::size_t p = body.size();
  JoinResult result;
  result.num_relations = p;

  // An empty instance annihilates the join.
  for (std::size_t i = 0; i < p; ++i) {
    if (db.rel(i).empty()) return result;
  }

  const std::vector<int> order = JoinOrder(body, db);

  // Seed with the first relation (materialized row-major: intermediate join
  // results are wide and short-lived, so they stay rows).
  {
    const int r0 = order[0];
    result.attrs = body[r0].attrs;
    const RelationInstance& inst = db.rel(r0);
    result.rows.reserve(inst.size());
    for (std::size_t t = 0; t < inst.size(); ++t) {
      result.rows.push_back(inst.tuple(t));
    }
    if (with_support) {
      result.support.assign(result.rows.size() * p, 0);
      for (std::size_t i = 0; i < result.rows.size(); ++i) {
        result.support[i * p + r0] = static_cast<TupleId>(i);
      }
    }
  }

  for (std::size_t step = 1; step < p; ++step) {
    const int rel = order[step];
    const RelationSchema& schema = body[rel];
    const RelationInstance& inst = db.rel(rel);

    // Shared attributes define the join key; new attributes get appended.
    AttrSet cur_set;
    for (AttrId a : result.attrs) cur_set.Add(a);
    const AttrSet shared = cur_set.Intersect(schema.attr_set());

    std::vector<int> key_cols_left;   // column positions in current rows
    std::vector<int> key_cols_right;  // column positions in `inst` tuples
    for (AttrId a : shared) {
      key_cols_left.push_back(result.ColumnOf(a));
      key_cols_right.push_back(schema.ColumnOf(a));
    }
    std::vector<int> new_cols;  // columns of `inst` not yet in the join
    std::vector<AttrId> new_attrs;
    for (std::size_t c = 0; c < schema.attrs.size(); ++c) {
      if (!shared.Contains(schema.attrs[c])) {
        new_cols.push_back(static_cast<int>(c));
        new_attrs.push_back(schema.attrs[c]);
      }
    }

    // Build: group the new relation's rows by their key-code combination —
    // no key tuples are materialized, collisions resolve by 32-bit code
    // compares against each group's representative row.
    const HashGroupIndex build(inst, key_cols_right);

    // Probe: translate each current row's key values into `inst`'s
    // dictionary codes (a value absent from a dictionary cannot match any
    // row, so the probe short-circuits), then look the code combination up.
    std::vector<Tuple> next_rows;
    std::vector<TupleId> next_support;
    next_rows.reserve(result.rows.size());
    std::vector<Code> probe(key_cols_left.size());
    for (std::size_t r = 0; r < result.rows.size(); ++r) {
      const Tuple& row = result.rows[r];
      bool translatable = true;
      for (std::size_t j = 0; j < key_cols_left.size(); ++j) {
        const std::int64_t code =
            inst.dict(key_cols_right[j]).Lookup(row[key_cols_left[j]]);
        if (code < 0) {
          translatable = false;
          break;
        }
        probe[j] = static_cast<Code>(code);
      }
      if (!translatable) continue;
      const std::int64_t g = build.FindByCodes(probe.data());
      if (g < 0) continue;
      for (TupleId t : build.rows(static_cast<std::size_t>(g))) {
        Tuple out = row;
        for (int c : new_cols) out.push_back(inst.ValueAt(t, c));
        next_rows.push_back(std::move(out));
        if (with_support) {
          const std::size_t base = next_support.size();
          next_support.resize(base + p);
          std::copy(result.support.begin() + r * p,
                    result.support.begin() + (r + 1) * p,
                    next_support.begin() + base);
          next_support[base + rel] = t;
        }
      }
    }

    result.rows = std::move(next_rows);
    result.support = std::move(next_support);
    for (AttrId a : new_attrs) result.attrs.push_back(a);
  }

  return result;
}

namespace {

// Count for a *connected* body (or one treated as a unit).
std::uint64_t CountOutputsConnected(const std::vector<RelationSchema>& body,
                                    AttrSet head, const Database& db) {
  JoinResult join = FullJoin(body, db, /*with_support=*/false);
  AttrSet all;
  for (AttrId a : join.attrs) all.Add(a);
  if (all.SubsetOf(head)) {
    // Full CQ (w.r.t. the attributes actually present): rows are distinct.
    return join.rows.size();
  }
  std::unordered_set<Tuple, VecHash> distinct;
  distinct.reserve(join.rows.size() * 2);
  const AttrSet proj = head.Intersect(all);
  for (std::size_t r = 0; r < join.rows.size(); ++r) {
    distinct.insert(join.Project(r, proj));
  }
  return distinct.size();
}

}  // namespace

std::uint64_t CountOutputs(const std::vector<RelationSchema>& body,
                           AttrSet head, const Database& db) {
  // A disconnected body joins by cross product, so the distinct head
  // projections multiply across connected components — counting them never
  // requires materializing the product.
  const int p = static_cast<int>(body.size());
  std::vector<int> comp(p, -1);
  int next = 0;
  for (int start = 0; start < p; ++start) {
    if (comp[start] >= 0) continue;
    comp[start] = next;
    std::vector<int> stack = {start};
    while (!stack.empty()) {
      const int u = stack.back();
      stack.pop_back();
      for (int v = 0; v < p; ++v) {
        if (comp[v] < 0 &&
            body[u].attr_set().Intersects(body[v].attr_set())) {
          comp[v] = next;
          stack.push_back(v);
        }
      }
    }
    ++next;
  }
  if (next <= 1) return CountOutputsConnected(body, head, db);

  std::uint64_t product = 1;
  for (int c = 0; c < next; ++c) {
    std::vector<RelationSchema> sub_body;
    Database sub_db;
    for (int i = 0; i < p; ++i) {
      if (comp[i] != c) continue;
      sub_body.push_back(body[i]);
      sub_db.Append(db.rel(i));
    }
    const std::uint64_t count = CountOutputsConnected(
        sub_body, head, sub_db);
    if (count == 0) return 0;
    product = static_cast<std::uint64_t>(
        SatMul(static_cast<std::int64_t>(product),
               static_cast<std::int64_t>(count)));
  }
  return product;
}

std::vector<Tuple> DistinctOutputs(const std::vector<RelationSchema>& body,
                                   AttrSet head, const Database& db) {
  JoinResult join = FullJoin(body, db, /*with_support=*/false);
  AttrSet all;
  for (AttrId a : join.attrs) all.Add(a);
  const AttrSet proj = head.Intersect(all);
  std::unordered_set<Tuple, VecHash> seen;
  seen.reserve(join.rows.size() * 2);
  std::vector<Tuple> out;
  for (std::size_t r = 0; r < join.rows.size(); ++r) {
    Tuple t = join.Project(r, proj);
    if (seen.insert(t).second) out.push_back(std::move(t));
  }
  return out;
}

std::vector<std::vector<char>> NonDanglingFlags(
    const std::vector<RelationSchema>& body, const Database& db) {
  JoinResult join = FullJoin(body, db, /*with_support=*/true);
  std::vector<std::vector<char>> flags(body.size());
  for (std::size_t i = 0; i < body.size(); ++i) {
    flags[i].assign(db.rel(i).size(), 0);
  }
  const std::size_t p = body.size();
  for (std::size_t r = 0; r < join.NumRows(); ++r) {
    for (std::size_t i = 0; i < p; ++i) {
      flags[i][join.SupportOf(r, i)] = 1;
    }
  }
  return flags;
}

}  // namespace adp
