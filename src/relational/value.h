// Value domain of the relational substrate.
//
// All attribute values are 64-bit integers. Workload generators and examples
// that conceptually use strings (names, labels) intern them to integers; the
// ADP algorithms only ever compare values for equality, so this loses
// nothing.

#ifndef ADP_RELATIONAL_VALUE_H_
#define ADP_RELATIONAL_VALUE_H_

#include <cstdint>

namespace adp {

/// A single attribute value.
using Value = std::int64_t;

}  // namespace adp

#endif  // ADP_RELATIONAL_VALUE_H_
