// Tuples: rows over a relation's ordered attribute list.

#ifndef ADP_RELATIONAL_TUPLE_H_
#define ADP_RELATIONAL_TUPLE_H_

#include <cstdint>
#include <vector>

#include "relational/value.h"

namespace adp {

/// A tuple is a vector of values whose positions follow the owning relation
/// schema's attribute order. A vacuum relation's tuple is the empty vector.
using Tuple = std::vector<Value>;

/// Index of a tuple within a relation instance. Solutions returned by the
/// solvers reference tuples of the *root* database via (relation, TupleId).
using TupleId = std::uint32_t;

}  // namespace adp

#endif  // ADP_RELATIONAL_TUPLE_H_
