// Multiway natural-join engine with provenance.
//
// This is the substrate standing in for the paper's PostgreSQL backend: it
// computes full join results, counts distinct head projections (|Q(D)|),
// identifies dangling tuples, and records per-row support (which input tuple
// of each relation produced a row) for the greedy heuristics and the Partial
// Set Cover reduction.
//
// The engine performs a sequence of hash joins in a greedily chosen connected
// order (falling back to cross products for disconnected bodies). Vacuum
// relations participate trivially: an empty vacuum instance annihilates the
// result; a {∅} instance joins as a 1-row cross product.

#ifndef ADP_RELATIONAL_JOIN_H_
#define ADP_RELATIONAL_JOIN_H_

#include <cstdint>
#include <vector>

#include "relational/database.h"
#include "relational/relation.h"
#include "util/attr_set.h"

namespace adp {

/// Full join output.
struct JoinResult {
  /// Column order of `rows`: the union of body attributes, in join order.
  std::vector<AttrId> attrs;

  /// One row per full-join result, over `attrs`.
  std::vector<Tuple> rows;

  /// If requested: flattened support matrix with stride `num_relations`.
  /// `support[r * num_relations + i]` is the index (within relation `i`'s
  /// instance) of the tuple that produced row `r`.
  std::vector<TupleId> support;
  std::size_t num_relations = 0;

  std::size_t NumRows() const { return rows.size(); }
  TupleId SupportOf(std::size_t row, std::size_t rel) const {
    return support[row * num_relations + rel];
  }

  /// Column position of attribute `a` in `attrs`, or -1.
  int ColumnOf(AttrId a) const;

  /// Projects row `row` onto the attributes in `set` (increasing AttrId
  /// order).
  Tuple Project(std::size_t row, AttrSet set) const;
};

/// Computes the full natural join of `body` over `db`.
/// If `with_support` is set, records the contributing tuple of every relation
/// for every row (costs O(rows * body.size()) extra memory).
JoinResult FullJoin(const std::vector<RelationSchema>& body,
                    const Database& db, bool with_support);

/// |Q(D)|: the number of distinct projections of the full join onto `head`.
/// If `head` covers all body attributes this is simply the number of full
/// join rows (instances are duplicate-free).
std::uint64_t CountOutputs(const std::vector<RelationSchema>& body,
                           AttrSet head, const Database& db);

/// The distinct head projections themselves, in first-seen order.
std::vector<Tuple> DistinctOutputs(const std::vector<RelationSchema>& body,
                                   AttrSet head, const Database& db);

/// Per-relation flags: `flags[i][t]` is 1 iff tuple `t` of relation `i`
/// participates in at least one full join row ("non-dangling", §7.2).
std::vector<std::vector<char>> NonDanglingFlags(
    const std::vector<RelationSchema>& body, const Database& db);

}  // namespace adp

#endif  // ADP_RELATIONAL_JOIN_H_
