// A database instance: one RelationInstance per relation in a query body,
// positionally aligned with the query's relation list.

#ifndef ADP_RELATIONAL_DATABASE_H_
#define ADP_RELATIONAL_DATABASE_H_

#include <cstddef>
#include <initializer_list>
#include <vector>

#include "relational/relation.h"

namespace adp {

/// Instances for the relations of one query, in body order.
///
/// A *root* database is the one the user builds; its instances have identity
/// origins and `root_relation(i) == i`. Query transforms produce derived
/// (query, database) pairs whose instances still point back at the root, so
/// solutions are always expressed in root coordinates.
class Database {
 public:
  Database() = default;
  explicit Database(std::size_t num_relations) : rels_(num_relations) {
    for (std::size_t i = 0; i < num_relations; ++i) {
      rels_[i].set_root_relation(static_cast<int>(i));
    }
  }

  std::size_t num_relations() const { return rels_.size(); }
  RelationInstance& rel(std::size_t i) { return rels_[i]; }
  const RelationInstance& rel(std::size_t i) const { return rels_[i]; }

  /// Appends an instance (used by transforms building derived databases).
  void Append(RelationInstance inst) { rels_.push_back(std::move(inst)); }

  /// Total number of tuples across all relations (|D| in the paper).
  std::size_t TotalTuples() const {
    std::size_t n = 0;
    for (const auto& r : rels_) n += r.size();
    return n;
  }

  /// Convenience bulk loader: sets relation `i`'s tuples from a list of rows.
  void Load(std::size_t i, std::initializer_list<Tuple> rows) {
    for (const Tuple& t : rows) rels_[i].Add(t);
  }

  /// Dedups every relation instance.
  void DedupAll() {
    for (auto& r : rels_) r.Dedup();
  }

 private:
  std::vector<RelationInstance> rels_;
};

/// Returns a copy of `db` without the tuples flagged in `removed`
/// (`removed[r][i]` marks tuple `i` of relation `r`). Origins are preserved.
/// Used by solution verification and the brute-force baseline.
Database WithTuplesRemoved(const Database& db,
                           const std::vector<std::vector<char>>& removed);

}  // namespace adp

#endif  // ADP_RELATIONAL_DATABASE_H_
