#include "relational/group_index.h"

#include <limits>

#include "util/hash.h"

namespace adp {
namespace {

constexpr std::uint32_t kEmptySlot = std::numeric_limits<std::uint32_t>::max();

}  // namespace

HashGroupIndex::HashGroupIndex(const RelationInstance& inst,
                               std::vector<int> key_cols)
    : inst_(&inst), key_cols_(std::move(key_cols)) {
  std::size_t cap = 16;
  while (cap < inst.size() * 2) cap <<= 1;
  mask_ = cap - 1;
  table_.assign(cap, kEmptySlot);

  const std::size_t kw = key_cols_.size();
  for (std::size_t r = 0; r < inst.size(); ++r) {
    std::uint64_t h = 0x2545f4914f6cdd1dULL;
    for (std::size_t j = 0; j < kw; ++j) {
      h = HashMix(h, inst.CodeAt(r, key_cols_[j]));
    }
    std::size_t slot = h & mask_;
    for (;;) {
      const std::uint32_t g = table_[slot];
      if (g == kEmptySlot) {
        table_[slot] = static_cast<std::uint32_t>(groups_.size());
        rep_.push_back(static_cast<TupleId>(r));
        groups_.emplace_back().push_back(static_cast<TupleId>(r));
        break;
      }
      bool eq = true;
      for (std::size_t j = 0; j < kw; ++j) {
        if (inst.CodeAt(rep_[g], key_cols_[j]) !=
            inst.CodeAt(r, key_cols_[j])) {
          eq = false;
          break;
        }
      }
      if (eq) {
        groups_[g].push_back(static_cast<TupleId>(r));
        break;
      }
      slot = (slot + 1) & mask_;
    }
  }
}

Tuple HashGroupIndex::KeyValues(std::size_t g) const {
  Tuple out;
  out.reserve(key_cols_.size());
  for (int c : key_cols_) out.push_back(inst_->ValueAt(rep_[g], c));
  return out;
}

std::int64_t HashGroupIndex::FindByCodes(const Code* codes) const {
  const std::size_t kw = key_cols_.size();
  std::uint64_t h = 0x2545f4914f6cdd1dULL;
  for (std::size_t j = 0; j < kw; ++j) h = HashMix(h, codes[j]);
  std::size_t slot = h & mask_;
  for (;;) {
    const std::uint32_t g = table_[slot];
    if (g == kEmptySlot) return -1;
    bool eq = true;
    for (std::size_t j = 0; j < kw; ++j) {
      if (inst_->CodeAt(rep_[g], key_cols_[j]) != codes[j]) {
        eq = false;
        break;
      }
    }
    if (eq) return static_cast<std::int64_t>(g);
    slot = (slot + 1) & mask_;
  }
}

}  // namespace adp
