#include "relational/relation.h"

#include <atomic>
#include <cstdint>
#include <limits>
#include <utility>

#include "util/hash.h"

namespace adp {
namespace {

std::atomic<std::uint64_t> g_max_rows{
    static_cast<std::uint64_t>(std::numeric_limits<TupleId>::max())};

}  // namespace

RelationInstance::RelationInstance() = default;
RelationInstance::~RelationInstance() = default;
RelationInstance::RelationInstance(RelationInstance&&) noexcept = default;
RelationInstance& RelationInstance::operator=(RelationInstance&&) noexcept =
    default;

RelationInstance::RelationInstance(const RelationInstance& other)
    : num_rows_(other.num_rows_),
      reserve_hint_(other.reserve_hint_),
      root_relation_(other.root_relation_) {
  if (other.cols_.empty() && other.origin_.empty()) return;
  Arena& a = ArenaRef();
  cols_.reserve(other.cols_.size());
  for (const Column& c : other.cols_) {
    Column copy;
    // Dictionaries are append-only, so sharing them across copies is sound;
    // a later mutating append clones its column dictionary first
    // (copy-on-write in MutableDict).
    copy.dict = c.dict;
    copy.codes.AppendN(a, c.codes.data(), c.codes.size());
    cols_.push_back(std::move(copy));
  }
  if (!other.origin_.empty()) {
    origin_.AppendN(a, other.origin_.data(), other.origin_.size());
  }
}

RelationInstance& RelationInstance::operator=(const RelationInstance& other) {
  if (this != &other) {
    RelationInstance tmp(other);
    *this = std::move(tmp);
  }
  return *this;
}

Arena& RelationInstance::ArenaRef() {
  if (arena_ == nullptr) arena_ = std::make_unique<Arena>();
  return *arena_;
}

Tuple RelationInstance::tuple(std::size_t i) const {
  Tuple out(cols_.size());
  for (std::size_t c = 0; c < cols_.size(); ++c) out[c] = ValueAt(i, c);
  return out;
}

void RelationInstance::EnsureArity(std::size_t n) {
  if (num_rows_ > 0 || !cols_.empty()) {
    if (n != cols_.size()) {
      throw std::invalid_argument("tuple arity mismatch: instance has " +
                                  std::to_string(cols_.size()) +
                                  " columns, row has " + std::to_string(n));
    }
    return;
  }
  cols_.resize(n);
  Arena& a = ArenaRef();
  for (Column& c : cols_) {
    c.dict = std::make_shared<ColumnDict>();
    if (reserve_hint_ > 0) c.codes.Reserve(a, reserve_hint_);
  }
}

void RelationInstance::CheckCapacity(std::size_t extra) const {
  const std::uint64_t limit = g_max_rows.load(std::memory_order_relaxed);
  if (static_cast<std::uint64_t>(num_rows_) + extra > limit) {
    throw TupleLimitError("relation instance would exceed the TupleId row "
                          "capacity (MaxRows() = " +
                          std::to_string(limit) + ")");
  }
}

ColumnDict& RelationInstance::MutableDict(std::size_t c) {
  std::shared_ptr<ColumnDict>& d = cols_[c].dict;
  if (d.use_count() > 1) d = std::make_shared<ColumnDict>(*d);
  return *d;
}

void RelationInstance::AppendRowImpl(const Value* vals, std::size_t n,
                                     TupleId origin, bool explicit_origin) {
  CheckCapacity(1);
  EnsureArity(n);
  Arena& a = ArenaRef();
  for (std::size_t c = 0; c < n; ++c) {
    cols_[c].codes.PushBack(a, MutableDict(c).Intern(vals[c]));
  }
  if (explicit_origin) {
    if (origin_.empty() && num_rows_ > 0) {
      // Promote the identity mapping to an explicit one.
      origin_.Reserve(a, num_rows_ + 1);
      for (std::size_t i = 0; i < num_rows_; ++i) {
        origin_.PushBack(a, static_cast<TupleId>(i));
      }
    }
    origin_.PushBack(a, origin);
  } else if (!origin_.empty()) {
    origin_.PushBack(a, static_cast<TupleId>(num_rows_));
  }
  ++num_rows_;
}

void RelationInstance::Add(Tuple t) { AppendRowImpl(t.data(), t.size(), 0, false); }

void RelationInstance::AddWithOrigin(Tuple t, TupleId origin) {
  AppendRowImpl(t.data(), t.size(), origin, true);
}

void RelationInstance::AppendRow(const Value* vals, std::size_t n) {
  AppendRowImpl(vals, n, 0, false);
}

void RelationInstance::AppendGathered(const RelationInstance& src,
                                      const std::vector<TupleId>& rows,
                                      const std::vector<int>& kept_cols) {
  CheckCapacity(rows.size());
  Arena& a = ArenaRef();
  if (num_rows_ == 0 && cols_.empty()) {
    // Adopt the source layout: share its dictionaries outright.
    cols_.resize(kept_cols.size());
    for (std::size_t j = 0; j < kept_cols.size(); ++j) {
      cols_[j].dict = src.cols_[kept_cols[j]].dict;
    }
  } else if (cols_.size() != kept_cols.size()) {
    throw std::invalid_argument("gather arity mismatch: instance has " +
                                std::to_string(cols_.size()) +
                                " columns, gather has " +
                                std::to_string(kept_cols.size()));
  }
  for (std::size_t j = 0; j < cols_.size(); ++j) {
    const Column& sc = src.cols_[kept_cols[j]];
    Column& dc = cols_[j];
    if (dc.dict.get() == sc.dict.get()) {
      // Same dictionary: codes transfer verbatim.
      dc.codes.Reserve(a, dc.codes.size() + rows.size());
      for (TupleId r : rows) dc.codes.PushBack(a, sc.codes[r]);
    } else {
      // Different dictionary (destination was populated another way):
      // decode and re-intern.
      ColumnDict& dict = MutableDict(j);
      dc.codes.Reserve(a, dc.codes.size() + rows.size());
      for (TupleId r : rows) {
        dc.codes.PushBack(a, dict.Intern(sc.dict->values[sc.codes[r]]));
      }
    }
  }
  if (origin_.empty() && num_rows_ > 0) {
    origin_.Reserve(a, num_rows_ + rows.size());
    for (std::size_t i = 0; i < num_rows_; ++i) {
      origin_.PushBack(a, static_cast<TupleId>(i));
    }
  }
  origin_.Reserve(a, origin_.size() + rows.size());
  for (TupleId r : rows) origin_.PushBack(a, src.OriginOf(r));
  num_rows_ += rows.size();
}

void RelationInstance::AppendGathered(const RelationInstance& src,
                                      const std::vector<TupleId>& rows) {
  std::vector<int> all(src.cols_.size());
  for (std::size_t c = 0; c < all.size(); ++c) all[c] = static_cast<int>(c);
  AppendGathered(src, rows, all);
}

void RelationInstance::Dedup() {
  if (num_rows_ <= 1) return;
  const std::size_t w = cols_.size();

  // Open-addressing set of surviving row ids, compared by code rows (codes
  // biject values within a column, so this is value equality).
  std::size_t cap = 16;
  while (cap < num_rows_ * 2) cap <<= 1;
  constexpr std::uint32_t kEmpty = std::numeric_limits<std::uint32_t>::max();
  std::vector<std::uint32_t> slots(cap, kEmpty);
  std::vector<TupleId> kept;
  kept.reserve(num_rows_);
  for (std::size_t r = 0; r < num_rows_; ++r) {
    std::uint64_t h = 0x2545f4914f6cdd1dULL;
    for (std::size_t c = 0; c < w; ++c) h = HashMix(h, cols_[c].codes[r]);
    std::size_t slot = h & (cap - 1);
    bool dup = false;
    while (slots[slot] != kEmpty) {
      const std::size_t other = slots[slot];
      bool eq = true;
      for (std::size_t c = 0; c < w; ++c) {
        if (cols_[c].codes[other] != cols_[c].codes[r]) {
          eq = false;
          break;
        }
      }
      if (eq) {
        dup = true;
        break;
      }
      slot = (slot + 1) & (cap - 1);
    }
    if (!dup) {
      slots[slot] = static_cast<std::uint32_t>(r);
      kept.push_back(static_cast<TupleId>(r));
    }
  }
  if (kept.size() == num_rows_) return;

  // Compact into a fresh arena so dropped rows do not pin old storage.
  auto fresh = std::make_unique<Arena>();
  for (Column& c : cols_) {
    ArenaVec<Code> codes;
    codes.Reserve(*fresh, kept.size());
    for (TupleId r : kept) codes.PushBack(*fresh, c.codes[r]);
    c.codes = codes;
  }
  const bool identity = origin_.empty();
  bool identity_after = true;
  ArenaVec<TupleId> origins;
  origins.Reserve(*fresh, kept.size());
  for (std::size_t i = 0; i < kept.size(); ++i) {
    const TupleId o = identity ? kept[i] : origin_[kept[i]];
    if (o != i) identity_after = false;
    origins.PushBack(*fresh, o);
  }
  // Keep the cheap identity representation when the kept origins are still
  // the identity.
  origin_ = identity_after ? ArenaVec<TupleId>() : origins;
  arena_ = std::move(fresh);
  num_rows_ = kept.size();
}

void RelationInstance::Reserve(std::size_t n) {
  reserve_hint_ = n;
  if (cols_.empty()) return;
  Arena& a = ArenaRef();
  for (Column& c : cols_) c.codes.Reserve(a, n);
}

std::uint64_t RelationInstance::MaxRows() {
  return g_max_rows.load(std::memory_order_relaxed);
}

std::uint64_t RelationInstance::OverrideMaxRowsForTest(std::uint64_t n) {
  return g_max_rows.exchange(n, std::memory_order_relaxed);
}

}  // namespace adp
