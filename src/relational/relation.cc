#include "relational/relation.h"

#include <unordered_set>

#include "util/hash.h"

namespace adp {

void RelationInstance::AddWithOrigin(Tuple t, TupleId origin) {
  if (origin_.empty() && !tuples_.empty()) {
    // Promote the identity mapping to an explicit one.
    origin_.reserve(tuples_.size() + 1);
    for (std::size_t i = 0; i < tuples_.size(); ++i) {
      origin_.push_back(static_cast<TupleId>(i));
    }
  }
  tuples_.push_back(std::move(t));
  origin_.push_back(origin);
}

void RelationInstance::Dedup() {
  std::unordered_set<Tuple, VecHash> seen;
  seen.reserve(tuples_.size() * 2);
  std::vector<Tuple> kept;
  std::vector<TupleId> kept_origin;
  const bool identity = origin_.empty();
  for (std::size_t i = 0; i < tuples_.size(); ++i) {
    if (seen.insert(tuples_[i]).second) {
      kept_origin.push_back(identity ? static_cast<TupleId>(i) : origin_[i]);
      kept.push_back(std::move(tuples_[i]));
    }
  }
  tuples_ = std::move(kept);
  // Keep the cheap identity representation when nothing was dropped and the
  // origins were already the identity.
  bool identity_origin = true;
  for (std::size_t i = 0; i < kept_origin.size(); ++i) {
    if (kept_origin[i] != i) {
      identity_origin = false;
      break;
    }
  }
  origin_ = identity_origin ? std::vector<TupleId>() : std::move(kept_origin);
}

}  // namespace adp
