// ProvenanceIndex: incremental deletion propagation over a materialized full
// join. This is the data structure behind GreedyForCQ (Algorithm 6) and
// DrasticGreedyForFullCQ (Algorithm 7): it answers "how many output tuples
// would disappear if this input tuple were deleted right now?" exactly, and
// applies deletions incrementally.
//
// Model: each full-join row belongs to one output *group* (its projection
// onto the head). An output tuple is alive while its group has at least one
// alive row; deleting an input tuple kills every alive row it supports.

#ifndef ADP_RELATIONAL_PROVENANCE_H_
#define ADP_RELATIONAL_PROVENANCE_H_

#include <cstdint>
#include <vector>

#include "relational/database.h"
#include "relational/join.h"
#include "util/attr_set.h"

namespace adp {

class ProvenanceIndex {
 public:
  /// Builds the index by materializing the full join of `body` over `db`
  /// with support, then grouping rows by head projection.
  ProvenanceIndex(const std::vector<RelationSchema>& body, AttrSet head,
                  const Database& db);

  /// Number of relations in the body.
  std::size_t num_relations() const { return tuple_rows_.size(); }

  /// Number of output tuples initially / still alive.
  std::int64_t total_outputs() const { return group_size_.size(); }
  std::int64_t alive_outputs() const { return alive_groups_; }

  /// Exact current profit of deleting tuple `t` of relation `rel`:
  /// |Q(D - S)| - |Q(D - S - t)| where S is the set already deleted.
  std::int64_t Profit(int rel, TupleId t) const;

  /// Initial profit (all rows alive). For a full CQ this equals the number
  /// of join rows supported by the tuple; used by DrasticGreedy.
  std::int64_t InitialProfit(int rel, TupleId t) const;

  /// Deletes tuple `t` of relation `rel`; returns the number of output
  /// tuples that died as a consequence.
  std::int64_t Delete(int rel, TupleId t);

  /// True if the tuple still supports at least one alive row (deleting it
  /// can change the output).
  bool IsRelevant(int rel, TupleId t) const;

  /// Number of tuples of relation `rel` tracked by the index (== instance
  /// size at construction).
  std::size_t NumTuples(int rel) const { return tuple_rows_[rel].size(); }

 private:
  // Per relation, per tuple: ids of join rows the tuple supports.
  std::vector<std::vector<std::vector<std::uint32_t>>> tuple_rows_;
  // Per row: owning group and alive flag.
  std::vector<std::uint32_t> row_group_;
  std::vector<char> row_alive_;
  // Per group: initial and alive row counts.
  std::vector<std::uint32_t> group_size_;
  std::vector<std::uint32_t> group_alive_;
  std::int64_t alive_groups_ = 0;

  // Scratch space for Profit(): per-group counters with versioning to avoid
  // O(groups) clears.
  mutable std::vector<std::uint32_t> scratch_count_;
  mutable std::vector<std::uint32_t> scratch_version_;
  mutable std::uint32_t version_ = 0;
};

}  // namespace adp

#endif  // ADP_RELATIONAL_PROVENANCE_H_
