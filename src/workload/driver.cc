#include "workload/driver.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "engine/completion_queue.h"
#include "engine/result_stream.h"
#include "engine/status.h"
#include "engine/ticket.h"
#include "net/client.h"
#include "net/wire.h"
#include "obs/names.h"
#include "util/rng.h"
#include "util/stopwatch.h"

namespace adp::workload {

namespace {

using std::chrono::milliseconds;

/// Per-thread outcome accumulator, merged after the run.
struct Tally {
  DriverOutcomes o;
  std::int64_t checksum = 0;

  void Request(StatusCode code, std::int64_t cost, std::int64_t outputs) {
    ++o.issued;
    switch (code) {
      case StatusCode::kOk:
        ++o.ok;
        checksum += cost + outputs;
        break;
      case StatusCode::kCancelled: ++o.cancelled; break;
      case StatusCode::kDeadlineExceeded: ++o.expired; break;
      case StatusCode::kOverloaded: ++o.shed; break;
      default: ++o.failed; break;
    }
  }

  void Request(const AdpResponse& r) {
    const AdpSolution& s = r.solution;
    Request(r.status.code(), r.ok() && s.feasible ? s.cost : 0,
            r.ok() ? s.output_count : 0);
  }

  void StreamTerminal(StatusCode code) {
    switch (code) {
      case StatusCode::kOk: ++o.streams_ok; break;
      case StatusCode::kCancelled:
      case StatusCode::kDeadlineExceeded:
      case StatusCode::kShutdown: ++o.streams_torn_down; break;
      case StatusCode::kOverloaded: ++o.streams_shed; break;
      default: ++o.streams_failed; break;
    }
  }

  void Merge(const Tally& t) {
    o.issued += t.o.issued;
    o.ok += t.o.ok;
    o.cancelled += t.o.cancelled;
    o.expired += t.o.expired;
    o.shed += t.o.shed;
    o.failed += t.o.failed;
    o.streams_issued += t.o.streams_issued;
    o.streams_ok += t.o.streams_ok;
    o.streams_torn_down += t.o.streams_torn_down;
    o.streams_shed += t.o.streams_shed;
    o.streams_failed += t.o.streams_failed;
    o.stream_items += t.o.stream_items;
    checksum += t.checksum;
  }
};

/// This run's engine-side observations: after minus before, bucket-wise.
obs::HistogramSnapshot SnapshotDelta(const obs::HistogramSnapshot& after,
                                     const obs::HistogramSnapshot& before) {
  obs::HistogramSnapshot d = after;
  for (std::size_t i = 0; i < d.buckets.size() && i < before.buckets.size();
       ++i) {
    d.buckets[i] -= before.buckets[i];
  }
  d.count = after.count - before.count;
  d.sum = after.sum - before.sum;
  return d;
}

/// Bounded slot pool for concurrently drained streams (open loop, net).
class Slots {
 public:
  explicit Slots(int n) : free_(n < 1 ? 1 : n) {}
  void Acquire() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return free_ > 0; });
    --free_;
  }
  void Release() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++free_;
    }
    cv_.notify_one();
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  int free_;
};

StatusCode ParseWireStatus(const std::string& payload) {
  static constexpr const char kKey[] = "\"status\":\"";
  const std::size_t at = payload.find(kKey);
  if (at == std::string::npos) return StatusCode::kInternal;
  const std::size_t from = at + sizeof(kKey) - 1;
  const std::size_t end = payload.find('"', from);
  if (end == std::string::npos) return StatusCode::kInternal;
  const std::string name = payload.substr(from, end - from);
  for (int c = 0; c <= static_cast<int>(StatusCode::kOverloaded); ++c) {
    if (name == StatusCodeName(static_cast<StatusCode>(c))) {
      return static_cast<StatusCode>(c);
    }
  }
  return StatusCode::kInternal;
}

std::int64_t ParseWireInt(const std::string& payload, const char* key) {
  const std::size_t at = payload.find(key);
  if (at == std::string::npos) return 0;
  return std::strtoll(payload.c_str() + at + std::strlen(key), nullptr, 10);
}

/// "DB <name> R1=v,v/v,v R2=..." for one family database.
std::string FormatDbLine(const std::string& db_name,
                         const NamedDatabase& named) {
  std::ostringstream out;
  out << "DB " << db_name;
  for (std::size_t r = 0; r < named.db.num_relations(); ++r) {
    const RelationInstance& rel = named.db.rel(r);
    out << ' ' << named.relation_names[r] << '=';
    for (std::size_t i = 0; i < rel.size(); ++i) {
      if (i > 0) out << '/';
      if (rel.arity() == 0) {
        out << "()";
        continue;
      }
      for (std::size_t j = 0; j < rel.arity(); ++j) {
        if (j > 0) out << ',';
        out << rel.ValueAt(i, j);
      }
    }
  }
  return out.str();
}

}  // namespace

bool OutcomesConsistent(const DriverOutcomes& o) {
  const bool requests_ok =
      o.issued == o.ok + o.cancelled + o.expired + o.shed + o.failed;
  const bool streams_ok_sum =
      o.streams_issued ==
      o.streams_ok + o.streams_torn_down + o.streams_shed + o.streams_failed;
  return requests_ok && streams_ok_sum;
}

TrafficMix ParseTrafficMix(const std::string& text) {
  TrafficMix mix{0, 0, 0, 0, 0};
  std::stringstream in(text);
  std::string part;
  while (std::getline(in, part, ',')) {
    if (part.empty()) continue;
    const std::size_t colon = part.find(':');
    if (colon == std::string::npos) {
      throw std::invalid_argument("mix entry needs key:weight — " + part);
    }
    const std::string key = part.substr(0, colon);
    char* end = nullptr;
    const double w = std::strtod(part.c_str() + colon + 1, &end);
    if (end == part.c_str() + colon + 1 || w < 0) {
      throw std::invalid_argument("bad mix weight in " + part);
    }
    if (key == "execute") mix.execute = w;
    else if (key == "prepared") mix.prepared = w;
    else if (key == "stream") mix.stream = w;
    else if (key == "cancel") mix.cancel = w;
    else if (key == "expired") mix.expired = w;
    else throw std::invalid_argument("unknown mix key " + key);
  }
  return mix;
}

LoadDriver::LoadDriver(AdpEngine& engine, std::vector<FamilyInstance> families,
                       const DriverConfig& config)
    : engine_(engine), families_(std::move(families)), config_(config) {
  if (families_.empty()) {
    throw std::invalid_argument("LoadDriver needs at least one family");
  }
  for (const FamilyInstance& f : families_) {
    const DbId id = engine_.RegisterDatabase(f.db);
    StatusOr<PreparedQuery> p = engine_.Prepare(f.query_text);
    if (!p.ok()) {
      throw std::runtime_error("Prepare(" + f.name +
                               ") failed: " + p.status().message());
    }
    const Status bound = p->Bind(id);
    if (!bound.ok()) {
      throw std::runtime_error("Bind(" + f.name +
                               ") failed: " + bound.message());
    }
    db_ids_.push_back(id);
    prepared_.push_back(std::move(p).value());
  }

  // The deterministic plan: every random draw comes from one seeded Rng in
  // a fixed order, so one (seed, families, config) triple always yields
  // the identical op sequence.
  const double weights[] = {config_.mix.execute, config_.mix.prepared,
                            config_.mix.stream, config_.mix.cancel,
                            config_.mix.expired};
  double total = 0;
  for (double w : weights) total += w;
  Rng rng(config_.seed);
  plan_.reserve(static_cast<std::size_t>(std::max(0, config_.requests)));
  for (int i = 0; i < config_.requests; ++i) {
    ScheduledOp op;
    op.family = static_cast<int>(rng.Uniform(families_.size()));
    op.k = rng.UniformInt(1, std::max<std::int64_t>(1, config_.max_k));
    op.kind = OpKind::kExecute;
    if (total > 0) {
      double draw = rng.UniformDouble() * total;
      for (int kind = 0; kind < 5; ++kind) {
        draw -= weights[kind];
        if (draw < 0 || kind == 4) {
          op.kind = static_cast<OpKind>(kind);
          break;
        }
      }
    }
    plan_.push_back(op);
  }
}

namespace {

struct RunContext {
  obs::Histogram client_latency;
  std::mutex merge_mu;
  Tally total;
};

DriverReport FinishReport(AdpEngine& engine,
                          const obs::HistogramSnapshot& before,
                          RunContext& ctx, double wall_ms) {
  DriverReport rep;
  rep.outcomes = ctx.total.o;
  rep.answer_checksum = ctx.total.checksum;
  rep.wall_ms = wall_ms;
  const double completed = static_cast<double>(rep.outcomes.issued) +
                           static_cast<double>(rep.outcomes.streams_issued);
  rep.throughput_ops_per_sec = wall_ms > 0 ? completed / (wall_ms / 1e3) : 0;
  const obs::HistogramSnapshot client = ctx.client_latency.Snapshot();
  rep.client_p50_ms = client.Quantile(0.5);
  rep.client_p99_ms = client.Quantile(0.99);
  const obs::HistogramSnapshot delta = SnapshotDelta(
      engine.metrics().GetHistogram(obs::kMRequestLatencyMs).Snapshot(),
      before);
  rep.engine_p50_ms = delta.Quantile(0.5);
  rep.engine_p99_ms = delta.Quantile(0.99);
  return rep;
}

}  // namespace

DriverReport LoadDriver::Run() {
  return config_.open_loop ? RunOpen() : RunClosed();
}

DriverReport LoadDriver::RunClosed() {
  const obs::HistogramSnapshot before =
      engine_.metrics().GetHistogram(obs::kMRequestLatencyMs).Snapshot();
  RunContext ctx;
  std::atomic<std::size_t> next{0};
  const int threads = std::max(1, config_.concurrency);
  Stopwatch wall;

  auto worker = [&] {
    Tally tally;
    for (;;) {
      const std::size_t i = next.fetch_add(1);
      if (i >= plan_.size()) break;
      const ScheduledOp& op = plan_[i];
      AdpRequest req;
      req.query_text = families_[op.family].query_text;
      req.db = db_ids_[op.family];
      req.k = op.k;
      const Stopwatch op_watch;
      switch (op.kind) {
        case OpKind::kExecute:
          tally.Request(engine_.Execute(req));
          break;
        case OpKind::kPrepared:
          tally.Request(engine_.Execute(prepared_[op.family], op.k));
          break;
        case OpKind::kStream: {
          ++tally.o.streams_issued;
          ResultStream stream = engine_.StreamAdp(std::move(req));
          while (std::optional<StreamItem> item = stream.Next()) {
            ++tally.o.stream_items;
            if (item->kind == StreamItem::Kind::kEnd) {
              tally.StreamTerminal(item->status.code());
            }
          }
          break;
        }
        case OpKind::kCancel: {
          AdpTicket ticket;
          std::future<AdpResponse> fut =
              engine_.Submit(std::move(req), &ticket);
          ticket.Cancel();
          tally.Request(fut.get());
          break;
        }
        case OpKind::kExpired: {
          req.deadline = Now() - milliseconds(1);
          tally.Request(engine_.Submit(std::move(req)).get());
          break;
        }
      }
      ctx.client_latency.Observe(op_watch.ElapsedMs());
    }
    std::lock_guard<std::mutex> lock(ctx.merge_mu);
    ctx.total.Merge(tally);
  };

  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t) pool.emplace_back(worker);
  for (std::thread& t : pool) t.join();
  return FinishReport(engine_, before, ctx, wall.ElapsedMs());
}

DriverReport LoadDriver::RunOpen() {
  const obs::HistogramSnapshot before =
      engine_.metrics().GetHistogram(obs::kMRequestLatencyMs).Snapshot();
  RunContext ctx;
  CompletionQueue cq;
  const double period_ms =
      1e3 / std::max(1e-6, config_.offered_rps);  // arrival spacing
  std::vector<double> intended(plan_.size(), 0.0);
  std::size_t request_ops = 0;
  for (std::size_t i = 0; i < plan_.size(); ++i) {
    intended[i] = static_cast<double>(i) * period_ms;
    if (plan_[i].kind != OpKind::kStream) ++request_ops;
  }

  Stopwatch wall;
  const MonotonicClock::time_point start = Now();

  // Collector: every non-stream submission produces exactly one completion
  // whatever its outcome, so counting to request_ops is exact.
  std::thread collector([&] {
    Tally tally;
    std::size_t got = 0;
    while (got < request_ops) {
      std::optional<Completion> c = cq.Next();
      if (!c.has_value()) {
        // Nothing outstanding yet (dispatcher is between arrivals).
        std::this_thread::sleep_for(std::chrono::microseconds(200));
        continue;
      }
      ctx.client_latency.Observe(MsBetween(start, Now()) - intended[c->tag]);
      tally.Request(c->response);
      ++got;
    }
    std::lock_guard<std::mutex> lock(ctx.merge_mu);
    ctx.total.Merge(tally);
  });

  Slots stream_slots(config_.concurrency);
  std::vector<std::thread> drainers;
  for (std::size_t i = 0; i < plan_.size(); ++i) {
    const ScheduledOp& op = plan_[i];
    AdpRequest req;
    req.query_text = families_[op.family].query_text;
    req.db = db_ids_[op.family];
    req.k = op.k;
    std::this_thread::sleep_until(
        start + std::chrono::duration_cast<MonotonicClock::duration>(
                    std::chrono::duration<double, std::milli>(intended[i])));
    switch (op.kind) {
      case OpKind::kExecute:
      case OpKind::kPrepared:
        // Both ride the async text path here: the open loop never blocks
        // the dispatcher, and prepared handles are exercised by the
        // closed loop and the net path.
        engine_.SubmitToQueue(std::move(req), cq, i);
        break;
      case OpKind::kCancel: {
        AdpTicket ticket = engine_.SubmitToQueue(std::move(req), cq, i);
        ticket.Cancel();
        break;
      }
      case OpKind::kExpired:
        req.deadline = Now() - milliseconds(1);
        engine_.SubmitToQueue(std::move(req), cq, i);
        break;
      case OpKind::kStream: {
        stream_slots.Acquire();
        ResultStream stream = engine_.StreamAdp(std::move(req));
        drainers.emplace_back(
            [&, i](ResultStream s) {
              Tally tally;
              ++tally.o.streams_issued;
              while (std::optional<StreamItem> item = s.Next()) {
                ++tally.o.stream_items;
                if (item->kind == StreamItem::Kind::kEnd) {
                  tally.StreamTerminal(item->status.code());
                  ctx.client_latency.Observe(MsBetween(start, Now()) -
                                             intended[i]);
                }
              }
              stream_slots.Release();
              std::lock_guard<std::mutex> lock(ctx.merge_mu);
              ctx.total.Merge(tally);
            },
            std::move(stream));
        break;
      }
    }
  }
  for (std::thread& t : drainers) t.join();
  collector.join();
  return FinishReport(engine_, before, ctx, wall.ElapsedMs());
}

DriverReport LoadDriver::RunOverNet(const std::string& host, int port) {
  const obs::HistogramSnapshot before =
      engine_.metrics().GetHistogram(obs::kMRequestLatencyMs).Snapshot();
  RunContext ctx;
  std::atomic<std::size_t> next{0};
  const int threads = std::max(1, config_.concurrency);
  std::atomic<bool> setup_failed{false};
  std::string setup_error;
  std::mutex setup_mu;
  Stopwatch wall;

  auto worker = [&] {
    Tally tally;
    net::AdpNetClient client;
    std::vector<std::int64_t> handles;
    auto fail_setup = [&](const std::string& what) {
      std::lock_guard<std::mutex> lock(setup_mu);
      setup_failed.store(true);
      if (setup_error.empty()) setup_error = what + ": " + client.error();
    };
    if (!client.Connect(host, port)) {
      fail_setup("connect");
      return;
    }
    // Per-connection setup: every family database and prepared handle.
    for (std::size_t f = 0; f < families_.size(); ++f) {
      const std::string db_name = "f" + std::to_string(f);
      if (!client.Call(net::FrameType::kDb,
                       FormatDbLine(db_name, families_[f].db))) {
        fail_setup("DB " + db_name);
        return;
      }
      std::string body;
      std::optional<net::Frame> reply =
          client.Call(net::FrameType::kPrepare,
                      "PREPARE " + families_[f].query_text, &body);
      if (!reply.has_value() || reply->type != net::FrameType::kPrepared) {
        fail_setup("PREPARE " + families_[f].name);
        return;
      }
      handles.push_back(ParseWireInt(body, "\"prepared\":"));
    }

    auto request_reply = [&](std::int64_t id) {
      std::optional<net::Frame> reply = client.WaitReply(id);
      if (!reply.has_value()) {
        tally.Request(StatusCode::kInternal, 0, 0);
        return false;
      }
      const StatusCode code = ParseWireStatus(reply->payload);
      tally.Request(code, ParseWireInt(reply->payload, "\"cost\":"),
                    ParseWireInt(reply->payload, "\"output_count\":"));
      return true;
    };

    for (;;) {
      const std::size_t i = next.fetch_add(1);
      if (i >= plan_.size()) break;
      const ScheduledOp& op = plan_[i];
      const std::string db_name = "f" + std::to_string(op.family);
      const std::string& query = families_[op.family].query_text;
      const std::string k = std::to_string(op.k);
      const Stopwatch op_watch;
      bool alive = true;
      switch (op.kind) {
        case OpKind::kExecute: {
          const std::int64_t id = client.NextId();
          client.Send(net::FrameType::kReq, id,
                      "REQ " + db_name + " " + k + " " + query);
          alive = request_reply(id);
          break;
        }
        case OpKind::kPrepared: {
          const std::int64_t id = client.NextId();
          client.Send(net::FrameType::kExec, id,
                      "EXEC " + std::to_string(handles[op.family]) + " " +
                          db_name + " " + k);
          alive = request_reply(id);
          break;
        }
        case OpKind::kStream: {
          const std::int64_t id = client.NextId();
          client.Send(net::FrameType::kStream, id,
                      "STREAM " + db_name + " " + k + " " + query);
          ++tally.o.streams_issued;
          bool ended = false;
          while (!ended) {
            std::optional<net::Frame> frame = client.WaitReply(id);
            if (!frame.has_value()) {
              tally.StreamTerminal(StatusCode::kInternal);
              alive = false;
              break;
            }
            ++tally.o.stream_items;
            if (frame->type == net::FrameType::kStreamEnd ||
                frame->type == net::FrameType::kError) {
              tally.StreamTerminal(ParseWireStatus(frame->payload));
              ended = true;
            }
          }
          break;
        }
        case OpKind::kCancel: {
          const std::int64_t id = client.NextId();
          client.Send(net::FrameType::kReq, id,
                      "REQ " + db_name + " " + k + " " + query);
          const std::int64_t cancel_id = client.NextId();
          client.Send(net::FrameType::kCancel, cancel_id,
                      "CANCEL " + std::to_string(id));
          client.WaitReply(cancel_id);  // CANCELOK / ERROR ack
          alive = request_reply(id);
          break;
        }
        case OpKind::kExpired: {
          const std::int64_t id = client.NextId();
          client.Send(net::FrameType::kReq, id,
                      "REQ " + db_name + " " + k + " +d0 " + query);
          alive = request_reply(id);
          break;
        }
      }
      ctx.client_latency.Observe(op_watch.ElapsedMs());
      if (!alive) break;  // transport died: stop pulling ops
    }
    client.Close();
    std::lock_guard<std::mutex> lock(ctx.merge_mu);
    ctx.total.Merge(tally);
  };

  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t) pool.emplace_back(worker);
  for (std::thread& t : pool) t.join();
  if (setup_failed.load()) {
    throw std::runtime_error("RunOverNet setup failed: " + setup_error);
  }
  return FinishReport(engine_, before, ctx, wall.ElapsedMs());
}

}  // namespace adp::workload
