// TPC-H-like workload (§8.1–8.2 substitution; see DESIGN.md).
//
// Schema: Supplier(NK, SK), PartSupp(SK, PK), LineItem(OK, PK).
// Queries:
//   Q1(NK,SK,PK,OK) :- Supplier(NK,SK), PartSupp(SK,PK), LineItem(OK,PK)
//     — full CQ, NP-hard (connected, non-boolean, no universal attribute).
//   σθ Q1 with θ: PK = kSelectedPart
//     — poly-time solvable after selection pushdown (Lemma 12): the residual
//       query decomposes into {Supplier, PartSupp} and {LineItem}, both
//       Singleton.

#ifndef ADP_WORKLOAD_TPCH_H_
#define ADP_WORKLOAD_TPCH_H_

#include <cstdint>

#include "query/query.h"
#include "relational/database.h"

namespace adp {

/// The paper's selected part key.
inline constexpr Value kSelectedPart = 13370;

/// A generated workload: query plus aligned root database.
struct TpchWorkload {
  ConjunctiveQuery query;
  Database db;
};

/// Builds the hard query Q1 with a full instance of ~`n` tuples:
/// n/3 suppliers, n/3 partsupp rows (~4 suppliers per part), n/3 lineitems
/// over uniformly random parts.
TpchWorkload MakeTpchHard(std::int64_t n, std::uint64_t seed);

/// Builds σθ Q1 (selection PK = kSelectedPart baked into the query) with an
/// instance whose *selected* portion has ~`n` tuples, plus ~10% noise rows
/// on other parts that the selection filters out. Supplier keys are unique;
/// lineitem order counts per supplier follow a mild skew so the exact
/// algorithm has non-trivial choices.
TpchWorkload MakeTpchSelected(std::int64_t n, std::uint64_t seed);

}  // namespace adp

#endif  // ADP_WORKLOAD_TPCH_H_
