// LoadDriver: an open- and closed-loop load driver over AdpEngine — and,
// optionally, over AdpNetServer via loopback (src/net/client.h) — for the
// macro-bench harness (bench/bench_workload_macro.cc), the adp_loadgen
// CLI, and the soak tests.
//
// The driver takes a set of generated query families (workload/families.h)
// and a traffic mix, pre-computes a deterministic operation plan from the
// seed (same seed => same plan, op for op), then replays it:
//
//   closed loop — `concurrency` worker threads each pull the next op and
//     issue it synchronously; a new op starts only when the previous one
//     finished. Measures capacity (the engine is never idle, never
//     over-committed beyond `concurrency`).
//   open loop — ops are dispatched on a fixed arrival schedule
//     (`offered_rps`), regardless of completions, through the engine's
//     async paths (SubmitToQueue / StreamAdp). Measures behavior under an
//     offered load, including queueing and shedding; latency is measured
//     from the op's *intended* arrival time, so dispatcher lag counts
//     against the engine, not the clock.
//
// Per-op client-side latencies feed an obs::Histogram; the report also
// carries engine-side p50/p99 extracted from the engine MetricsRegistry's
// adp_request_latency_ms histogram as a before/after bucket delta, so a
// shared engine only contributes this run's observations.
//
// Semantics, mix grammar, and report fields: docs/WORKLOAD.md (kept in
// sync by tools/check_docs.py).

#ifndef ADP_WORKLOAD_DRIVER_H_
#define ADP_WORKLOAD_DRIVER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "engine/engine.h"
#include "obs/metrics.h"
#include "workload/families.h"

namespace adp::workload {

/// One kind of driver operation.
enum class OpKind {
  kExecute,   // synchronous Execute from query text (plan-cache path)
  kPrepared,  // Execute through the family's bound PreparedQuery
  kStream,    // StreamAdp, drained to the terminal item
  kCancel,    // Submit, then immediately AdpTicket::Cancel
  kExpired,   // Submit with an already-expired deadline
};

/// Relative weights of the op kinds (need not sum to 1; all-zero means
/// pure kExecute). Pure aggregate — parsed by the docs drift-checker.
struct TrafficMix {
  double execute = 1.0;
  double prepared = 0.0;
  double stream = 0.0;
  double cancel = 0.0;
  double expired = 0.0;
};

/// One planned operation: which family, which op kind, which k.
struct ScheduledOp {
  int family = 0;
  OpKind kind = OpKind::kExecute;
  std::int64_t k = 1;
};

/// Driver knobs. Pure aggregate — parsed by the docs drift-checker.
struct DriverConfig {
  /// false: closed loop; true: open loop at `offered_rps`.
  bool open_loop = false;
  /// Closed loop: worker threads. Open loop: max concurrently drained
  /// streams (request ops are async and need no thread each).
  int concurrency = 4;
  /// Open loop only: offered arrival rate, ops per second.
  double offered_rps = 200.0;
  /// Total operations in the plan.
  int requests = 256;
  /// Per-op k is drawn uniformly from [1, max_k].
  std::int64_t max_k = 3;
  /// Plan seed: same seed + same families + same mix => identical plan.
  std::uint64_t seed = 1;
  TrafficMix mix;
};

/// Outcome buckets. Request ops (kExecute/kPrepared/kCancel/kExpired) fill
/// the request buckets; kStream ops fill the stream buckets. Every issued
/// op lands in exactly one bucket (OutcomesConsistent).
struct DriverOutcomes {
  std::uint64_t issued = 0;      // request ops issued
  std::uint64_t ok = 0;          // status OK (dedup/coalesce hits included)
  std::uint64_t cancelled = 0;   // status CANCELLED
  std::uint64_t expired = 0;     // status DEADLINE_EXCEEDED
  std::uint64_t shed = 0;        // status OVERLOADED
  std::uint64_t failed = 0;      // any other non-OK status
  std::uint64_t streams_issued = 0;  // stream ops issued
  std::uint64_t streams_ok = 0;      // terminal status OK
  std::uint64_t streams_torn_down = 0;  // terminal CANCELLED/EXPIRED/SHUTDOWN
  std::uint64_t streams_shed = 0;       // terminal OVERLOADED
  std::uint64_t streams_failed = 0;     // any other terminal status
  std::uint64_t stream_items = 0;  // items delivered across all streams
};

/// The result of one driver run.
struct DriverReport {
  DriverOutcomes outcomes;
  double wall_ms = 0.0;
  /// Completed ops (requests + streams, any outcome) per wall second.
  double throughput_ops_per_sec = 0.0;
  /// Client-observed per-op latency quantiles (ms). Open loop measures
  /// from the intended arrival time.
  double client_p50_ms = 0.0;
  double client_p99_ms = 0.0;
  /// Engine-side adp_request_latency_ms quantiles (ms) over exactly this
  /// run's observations (before/after registry snapshot delta).
  double engine_p50_ms = 0.0;
  double engine_p99_ms = 0.0;
  /// Sum over OK request responses of cost and output_count — a
  /// reproducibility fingerprint for cancel-free deterministic blends.
  std::int64_t answer_checksum = 0;
};

/// True iff every issued op landed in exactly one outcome bucket.
bool OutcomesConsistent(const DriverOutcomes& o);

/// Parses "execute:0.6,stream:0.2,cancel:0.1" (keys: execute, prepared,
/// stream, cancel, expired; unspecified keys are 0). Throws
/// std::invalid_argument on unknown keys or malformed numbers.
TrafficMix ParseTrafficMix(const std::string& text);

class LoadDriver {
 public:
  /// Registers each family's database with `engine` and prepares+binds
  /// each family's query, then builds the deterministic op plan.
  /// `families` must be non-empty; the engine must outlive the driver.
  LoadDriver(AdpEngine& engine, std::vector<FamilyInstance> families,
             const DriverConfig& config);

  /// The deterministic operation plan (stable across runs for one seed).
  const std::vector<ScheduledOp>& plan() const { return plan_; }

  const std::vector<FamilyInstance>& families() const { return families_; }

  /// Replays the plan against the engine in-process (open or closed loop
  /// per DriverConfig::open_loop). May be called repeatedly; each call
  /// replays the same plan and reports only its own observations.
  DriverReport Run();

  /// Replays the plan through an AdpNetServer at host:port (always closed
  /// loop: the wire client is blocking). Each worker thread holds its own
  /// connection, registers every family database on it, and PREPAREs every
  /// family query; kCancel ops use the CANCEL verb, kExpired ops a "+d0"
  /// deadline token. Engine-side quantiles still come from `engine`, which
  /// must be the instance behind the server (loopback).
  DriverReport RunOverNet(const std::string& host, int port);

 private:
  DriverReport RunClosed();
  DriverReport RunOpen();

  AdpEngine& engine_;
  std::vector<FamilyInstance> families_;
  DriverConfig config_;
  std::vector<DbId> db_ids_;
  std::vector<PreparedQuery> prepared_;
  std::vector<ScheduledOp> plan_;
};

}  // namespace adp::workload

#endif  // ADP_WORKLOAD_DRIVER_H_
