#include "workload/families.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "query/parser.h"

namespace adp::workload {

namespace {

// SplitMix64 finalizer: decorrelates the per-spec stream from the raw seed
// so adjacent seeds do not produce correlated databases.
std::uint64_t Mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t SpecFingerprint(const FamilySpec& s) {
  std::uint64_t h = Mix(static_cast<std::uint64_t>(s.shape) + 1);
  h = Mix(h ^ static_cast<std::uint64_t>(s.relations));
  h = Mix(h ^ (static_cast<std::uint64_t>(s.head) << 8));
  h = Mix(h ^ (static_cast<std::uint64_t>(s.cardinality) << 16));
  h = Mix(h ^ (static_cast<std::uint64_t>(s.domain) << 24));
  return h;
}

const char* ShapeToken(FamilyShape s) {
  switch (s) {
    case FamilyShape::kChain: return "chain";
    case FamilyShape::kCycle: return "cycle";
    case FamilyShape::kStar: return "star";
    case FamilyShape::kDisconnected: return "disc";
  }
  return "?";
}

const char* HeadToken(HeadClass h) {
  switch (h) {
    case HeadClass::kBoolean: return "bool";
    case HeadClass::kFull: return "full";
    case HeadClass::kProjected: return "proj";
  }
  return "?";
}

const char* CardToken(CardinalityClass c) {
  switch (c) {
    case CardinalityClass::kTiny: return "tiny";
    case CardinalityClass::kSmall: return "small";
    case CardinalityClass::kMedium: return "medium";
  }
  return "?";
}

const char* DomainToken(DomainClass d) {
  switch (d) {
    case DomainClass::kDense: return "dense";
    case DomainClass::kMid: return "mid";
    case DomainClass::kSparse: return "sparse";
  }
  return "?";
}

struct Atom {
  std::string name;
  std::vector<std::string> attrs;
};

// The query skeleton of a valid spec: body atoms (in database order) and
// the head attribute list.
struct Skeleton {
  std::vector<Atom> atoms;
  std::vector<std::string> head;
};

std::string A(int i) { return "A" + std::to_string(i); }
std::string B(int i) { return "B" + std::to_string(i); }

Skeleton BuildSkeleton(const FamilySpec& spec) {
  Skeleton sk;
  const int n = spec.relations;
  switch (spec.shape) {
    case FamilyShape::kChain: {
      for (int i = 1; i <= n; ++i) {
        sk.atoms.push_back({"R" + std::to_string(i), {A(i), A(i + 1)}});
      }
      if (spec.head == HeadClass::kFull) {
        for (int i = 1; i <= n + 1; ++i) sk.head.push_back(A(i));
      } else if (spec.head == HeadClass::kProjected) {
        sk.head.push_back(A(2));  // the join attribute of the 2-chain
      }
      break;
    }
    case FamilyShape::kCycle: {
      for (int i = 1; i <= n; ++i) {
        sk.atoms.push_back({"R" + std::to_string(i), {A(i), A(i % n + 1)}});
      }
      if (spec.head == HeadClass::kFull) {
        for (int i = 1; i <= n; ++i) sk.head.push_back(A(i));
      }
      break;
    }
    case FamilyShape::kStar: {
      if (spec.head == HeadClass::kProjected) {
        // Hub guard atom: makes the hub the singleton attribute set.
        sk.atoms.push_back({"R0", {A(1)}});
      }
      for (int i = 1; i <= n; ++i) {
        sk.atoms.push_back({"R" + std::to_string(i), {A(1), B(i)}});
      }
      sk.head.push_back(A(1));
      if (spec.head == HeadClass::kFull) {
        for (int i = 1; i <= n; ++i) sk.head.push_back(B(i));
      }
      break;
    }
    case FamilyShape::kDisconnected: {
      for (int i = 1; i <= n; ++i) {
        const std::string ai = "A" + std::to_string(i);
        const std::string bi = "B" + std::to_string(i);
        const std::string ci = "C" + std::to_string(i);
        sk.atoms.push_back({"S" + std::to_string(i), {ai, bi}});
        sk.atoms.push_back({"T" + std::to_string(i), {bi, ci}});
        sk.head.push_back(ai);
        sk.head.push_back(bi);
        sk.head.push_back(ci);
      }
      break;
    }
  }
  return sk;
}

std::string RenderQuery(const Skeleton& sk) {
  std::ostringstream out;
  out << "Q(";
  for (std::size_t i = 0; i < sk.head.size(); ++i) {
    if (i > 0) out << ",";
    out << sk.head[i];
  }
  out << ") :- ";
  for (std::size_t i = 0; i < sk.atoms.size(); ++i) {
    if (i > 0) out << ", ";
    out << sk.atoms[i].name << "(";
    for (std::size_t j = 0; j < sk.atoms[i].attrs.size(); ++j) {
      if (j > 0) out << ",";
      out << sk.atoms[i].attrs[j];
    }
    out << ")";
  }
  return out.str();
}

}  // namespace

bool ValidateFamilySpec(const FamilySpec& spec, std::string* why) {
  auto fail = [&](const char* msg) {
    if (why != nullptr) *why = msg;
    return false;
  };
  if (spec.relations < 1) return fail("relations must be >= 1");
  switch (spec.shape) {
    case FamilyShape::kChain:
      if (spec.head == HeadClass::kFull && spec.relations < 2) {
        return fail("full-head chains need >= 2 relations");
      }
      if (spec.head == HeadClass::kProjected && spec.relations != 2) {
        return fail("projected chains are 2-chains only");
      }
      return true;
    case FamilyShape::kCycle:
      if (spec.relations < 3) return fail("cycles need >= 3 relations");
      if (spec.head == HeadClass::kProjected) {
        return fail("cycles take a kBoolean or kFull head");
      }
      return true;
    case FamilyShape::kStar:
      if (spec.relations < 2) return fail("stars need >= 2 rays");
      if (spec.head == HeadClass::kBoolean) {
        return fail("stars take a kFull or kProjected head");
      }
      return true;
    case FamilyShape::kDisconnected:
      if (spec.relations < 2) {
        return fail("disconnected families need >= 2 components");
      }
      if (spec.head != HeadClass::kFull) {
        return fail("disconnected families take a kFull head");
      }
      return true;
  }
  return fail("unknown shape");
}

FamilyLabel LabelFor(const FamilySpec& spec) {
  // Frozen against the live classifier by tests/workload_families_test.cc.
  switch (spec.shape) {
    case FamilyShape::kChain:
      if (spec.head == HeadClass::kBoolean) return {true, AdpCase::kBoolean};
      if (spec.head == HeadClass::kProjected) {
        return {true, AdpCase::kUniverse};
      }
      return spec.relations == 2 ? FamilyLabel{true, AdpCase::kUniverse}
                                 : FamilyLabel{false, AdpCase::kHeuristic};
    case FamilyShape::kCycle:
      // A cycle contains a triad: ADP is hard whatever the head.
      return spec.head == HeadClass::kBoolean
                 ? FamilyLabel{false, AdpCase::kBoolean}
                 : FamilyLabel{false, AdpCase::kHeuristic};
    case FamilyShape::kStar:
      return spec.head == HeadClass::kProjected
                 ? FamilyLabel{true, AdpCase::kSingleton}
                 : FamilyLabel{true, AdpCase::kUniverse};
    case FamilyShape::kDisconnected:
      return {true, AdpCase::kDecompose};
  }
  return {true, AdpCase::kHeuristic};
}

std::string FamilyName(const FamilySpec& spec) {
  std::ostringstream out;
  out << ShapeToken(spec.shape) << spec.relations << "." << HeadToken(spec.head)
      << "." << CardToken(spec.cardinality) << "." << DomainToken(spec.domain);
  return out.str();
}

std::int64_t FamilyRows(CardinalityClass c) {
  switch (c) {
    case CardinalityClass::kTiny: return 24;
    case CardinalityClass::kSmall: return 96;
    case CardinalityClass::kMedium: return 384;
  }
  return 24;
}

std::int64_t FamilyDomain(DomainClass d, std::int64_t rows) {
  switch (d) {
    case DomainClass::kDense: return std::max<std::int64_t>(4, rows / 8);
    case DomainClass::kMid: return std::max<std::int64_t>(8, rows / 2);
    case DomainClass::kSparse: return std::max<std::int64_t>(16, rows * 2);
  }
  return 8;
}

FamilyInstance MakeFamilyInstance(const FamilySpec& spec, std::uint64_t seed) {
  std::string why;
  if (!ValidateFamilySpec(spec, &why)) {
    throw std::invalid_argument("invalid FamilySpec: " + why);
  }
  const Skeleton sk = BuildSkeleton(spec);

  FamilyInstance inst;
  inst.spec = spec;
  inst.seed = seed;
  inst.name = FamilyName(spec);
  inst.query_text = RenderQuery(sk);
  inst.query = ParseQuery(inst.query_text);
  inst.label = LabelFor(spec);

  const std::int64_t rows = FamilyRows(spec.cardinality);
  const std::int64_t domain = FamilyDomain(spec.domain, rows);
  // The planted spine: values 1..spine appear in every relation on every
  // join position, so the full join always has at least `spine` outputs.
  const std::int64_t spine = std::min<std::int64_t>(4, domain);

  Rng rng(seed ^ SpecFingerprint(spec));
  for (const Atom& atom : sk.atoms) {
    RelationInstance rel;
    const std::size_t arity = atom.attrs.size();
    for (std::int64_t s = 1; s <= spine; ++s) {
      rel.Add(Tuple(arity, s));
    }
    for (std::int64_t r = spine; r < rows; ++r) {
      Tuple t(arity);
      for (std::size_t j = 0; j < arity; ++j) {
        t[j] = rng.UniformInt(1, domain);
      }
      rel.Add(std::move(t));
    }
    rel.Dedup();
    inst.db.relation_names.push_back(atom.name);
    inst.db.db.Append(std::move(rel));
  }
  return inst;
}

std::vector<FamilySpec> DefaultFamilyCatalog() {
  using S = FamilyShape;
  using H = HeadClass;
  using C = CardinalityClass;
  using D = DomainClass;
  return {
      // Easy shapes, one per poly-time Algorithm-2 case.
      {S::kChain, 3, H::kBoolean, C::kSmall, D::kMid},     // Boolean, ptime
      {S::kChain, 2, H::kFull, C::kSmall, D::kMid},        // Universe, ptime
      {S::kChain, 2, H::kProjected, C::kSmall, D::kDense}, // Universe, ptime
      {S::kStar, 3, H::kProjected, C::kSmall, D::kMid},    // Singleton, ptime
      {S::kStar, 4, H::kFull, C::kTiny, D::kSparse},       // Universe, ptime
      {S::kDisconnected, 3, H::kFull, C::kSmall, D::kMid}, // Decompose, ptime
      // Hard shapes: Boolean fallback and the heuristic leaves.
      {S::kCycle, 3, H::kBoolean, C::kTiny, D::kDense},    // Boolean, hard
      {S::kChain, 3, H::kFull, C::kTiny, D::kSparse},      // Heuristic, hard
      {S::kCycle, 3, H::kFull, C::kTiny, D::kSparse},      // Heuristic, hard
  };
}

std::vector<FamilyInstance> MakeFamilySet(const std::vector<FamilySpec>& specs,
                                          std::uint64_t seed) {
  std::vector<FamilyInstance> out;
  out.reserve(specs.size());
  Rng derive(seed);
  for (const FamilySpec& spec : specs) {
    out.push_back(MakeFamilyInstance(spec, derive.Next()));
  }
  return out;
}

FamilySpec SampleFamilySpec(Rng& rng) {
  // Weighted shape draw: easy shapes ~3:1 over hard ones.
  static const FamilySpec kTemplates[] = {
      {FamilyShape::kChain, 3, HeadClass::kBoolean, CardinalityClass::kSmall,
       DomainClass::kMid},
      {FamilyShape::kChain, 2, HeadClass::kFull, CardinalityClass::kSmall,
       DomainClass::kMid},
      {FamilyShape::kStar, 3, HeadClass::kProjected, CardinalityClass::kSmall,
       DomainClass::kMid},
      {FamilyShape::kStar, 4, HeadClass::kFull, CardinalityClass::kTiny,
       DomainClass::kSparse},
      {FamilyShape::kDisconnected, 3, HeadClass::kFull,
       CardinalityClass::kSmall, DomainClass::kMid},
      {FamilyShape::kCycle, 3, HeadClass::kBoolean, CardinalityClass::kTiny,
       DomainClass::kDense},
      {FamilyShape::kChain, 3, HeadClass::kFull, CardinalityClass::kTiny,
       DomainClass::kSparse},
  };
  static const int kWeights[] = {3, 3, 3, 2, 2, 1, 1};
  int total = 0;
  for (int w : kWeights) total += w;
  int pick = static_cast<int>(rng.Uniform(static_cast<std::uint64_t>(total)));
  std::size_t idx = 0;
  for (; idx + 1 < std::size(kTemplates); ++idx) {
    pick -= kWeights[idx];
    if (pick < 0) break;
  }
  FamilySpec spec = kTemplates[idx];
  // Re-draw the size classes so samples vary beyond the templates.
  spec.cardinality = static_cast<CardinalityClass>(rng.Uniform(2));  // no
  // kMedium from the sampler: sampled fleets stay cheap by construction.
  spec.domain = static_cast<DomainClass>(rng.Uniform(3));
  return spec;
}

}  // namespace adp::workload
