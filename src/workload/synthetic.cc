#include "workload/synthetic.h"

#include <unordered_set>

#include "query/parser.h"
#include "util/rng.h"

namespace adp {

ConjunctiveQuery MakeQ7() {
  return ParseQuery(
      "Q(A,B,C,D,E,F,G) :- R1(A,B,C), R2(A,B,C,D,E), R3(A,B,C,D,G), "
      "R4(A,B,C,F)");
}

ConjunctiveQuery MakeQ8() {
  return ParseQuery(
      "Q(A1,B1,A2,B2,A3,B3) :- R11(A1), R12(A1,B1), R21(A2), R22(A2,B2), "
      "R31(A3), R32(A3,B3)");
}

Database MakeQ7Database(const ConjunctiveQuery& q, int num_keys,
                        int rows_per_key, std::uint64_t seed) {
  Rng rng(seed);
  Database db(q.num_relations());
  // Distinct key triples over a domain wide enough to host them.
  std::int64_t side = 2;
  while (side * side * side < num_keys * 2) ++side;
  std::vector<Tuple> keys;
  {
    std::unordered_set<std::int64_t> used;
    while (static_cast<int>(keys.size()) < num_keys) {
      const Value a = static_cast<Value>(rng.Uniform(side));
      const Value b = static_cast<Value>(rng.Uniform(side));
      const Value c = static_cast<Value>(rng.Uniform(side));
      const std::int64_t code = (a * side + b) * side + c;
      if (used.insert(code).second) keys.push_back({a, b, c});
    }
  }
  const std::int64_t d_domain = 4;
  const std::int64_t eg_domain = 6;
  for (const Tuple& key : keys) {
    db.rel(0).Add(key);  // R1(A,B,C)
    for (int r = 0; r < rows_per_key; ++r) {
      const Value d = static_cast<Value>(rng.Uniform(d_domain));
      db.rel(1).Add({key[0], key[1], key[2], d,
                     static_cast<Value>(rng.Uniform(eg_domain))});
      db.rel(2).Add({key[0], key[1], key[2], d,
                     static_cast<Value>(rng.Uniform(eg_domain))});
      db.rel(3).Add(
          {key[0], key[1], key[2], static_cast<Value>(rng.Uniform(eg_domain))});
    }
  }
  db.DedupAll();
  return db;
}

Database MakeUniformDatabase(const ConjunctiveQuery& q,
                             const std::vector<std::int64_t>& sizes,
                             std::int64_t domain, std::uint64_t seed) {
  Rng rng(seed);
  Database db(q.num_relations());
  for (int i = 0; i < q.num_relations(); ++i) {
    const std::size_t arity = q.relation(i).attrs.size();
    const std::int64_t count = sizes[i % sizes.size()];
    for (std::int64_t t = 0; t < count; ++t) {
      Tuple row(arity);
      for (std::size_t c = 0; c < arity; ++c) {
        row[c] = static_cast<Value>(1 + rng.Uniform(domain));
      }
      db.rel(i).Add(std::move(row));
    }
    db.rel(i).Dedup();
  }
  return db;
}

}  // namespace adp
