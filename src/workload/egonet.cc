#include "workload/egonet.h"

#include <algorithm>
#include <set>
#include <stdexcept>

#include "query/parser.h"
#include "util/rng.h"

namespace adp {

EgonetTables MakeEgonet(int nodes, int circles,
                        std::int64_t target_directed_edges,
                        std::uint64_t seed) {
  Rng rng(seed);
  EgonetTables out;
  out.tables.resize(4);
  out.num_nodes = nodes;

  // Assign each node to one or two circles.
  std::vector<std::vector<int>> circle_members(circles);
  for (int v = 0; v < nodes; ++v) {
    circle_members[rng.Uniform(circles)].push_back(v);
    if (rng.UniformDouble() < 0.3) {
      circle_members[rng.Uniform(circles)].push_back(v);
    }
  }

  // Sample undirected intra-circle edges until the target is met; sprinkle
  // 5% inter-circle edges for realism.
  const std::int64_t target_undirected = target_directed_edges / 2;
  std::set<std::pair<int, int>> edges;
  std::int64_t attempts = 0;
  while (static_cast<std::int64_t>(edges.size()) < target_undirected &&
         attempts < target_undirected * 100) {
    ++attempts;
    int u, v;
    if (rng.UniformDouble() < 0.95) {
      const auto& members = circle_members[rng.Uniform(circles)];
      if (members.size() < 2) continue;
      u = members[rng.Uniform(members.size())];
      v = members[rng.Uniform(members.size())];
    } else {
      u = static_cast<int>(rng.Uniform(nodes));
      v = static_cast<int>(rng.Uniform(nodes));
    }
    if (u == v) continue;
    edges.insert({std::min(u, v), std::max(u, v)});
  }

  // Bi-direct and split by rank mod 4 (paper's construction).
  std::int64_t rank = 0;
  for (const auto& [u, v] : edges) {
    out.tables[rank % 4].emplace_back(u, v);
    ++rank;
    out.tables[rank % 4].emplace_back(v, u);
    ++rank;
  }
  out.num_directed_edges = rank;
  return out;
}

EgonetTables MakePaperEgonet(std::uint64_t seed) {
  return MakeEgonet(150, 7, 3386, seed);
}

Database MakeEdgeDatabase(const ConjunctiveQuery& q,
                          const EgonetTables& tables) {
  Database db(q.num_relations());
  for (int i = 0; i < q.num_relations(); ++i) {
    const std::string& name = q.relation(i).name;
    if (name.size() != 2 || name[0] != 'R' || name[1] < '1' || name[1] > '4') {
      throw std::invalid_argument("MakeEdgeDatabase: relation name " + name +
                                  " is not R1..R4");
    }
    const int table = name[1] - '1';
    for (const auto& [a, b] : tables.tables[table]) {
      db.rel(i).Add({a, b});
    }
    db.rel(i).Dedup();
  }
  return db;
}

ConjunctiveQuery MakeQ2() {
  return ParseQuery("Q(A,B,C,D) :- R1(A,B), R2(B,C), R3(C,D)");
}

ConjunctiveQuery MakeQ3() {
  return ParseQuery("Q(A,B,C) :- R1(A,B), R2(B,C), R3(C,A)");
}

ConjunctiveQuery MakeQ4() {
  return ParseQuery("Q(A,C,E,G) :- R1(A,B), R2(B,C), R3(E,F), R4(F,G)");
}

ConjunctiveQuery MakeQ5() {
  return ParseQuery("Q(A,B,C) :- R1(A,E), R2(B,E), R3(C,E)");
}

}  // namespace adp
