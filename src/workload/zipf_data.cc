#include "workload/zipf_data.h"

#include <algorithm>
#include <set>
#include <stdexcept>

#include "query/parser.h"
#include "util/rng.h"

namespace adp {

ConjunctiveQuery MakeQ6() { return ParseQuery("Q(A,B) :- R1(A), R2(A,B)"); }

ConjunctiveQuery MakeQPath() {
  return ParseQuery("Q(A,B) :- R1(A), R2(A,B), R3(B)");
}

Database MakeZipfDatabase(const ConjunctiveQuery& q, std::int64_t n,
                          double alpha, std::uint64_t seed) {
  Rng rng(seed);
  const int distinct =
      static_cast<int>(std::max<std::int64_t>(2, n / 5));  // 0.2 * n
  ZipfSampler zipf(distinct, alpha);

  std::set<std::pair<Value, Value>> pairs;
  std::int64_t attempts = 0;
  while (static_cast<std::int64_t>(pairs.size()) < n && attempts < n * 50) {
    ++attempts;
    const Value a = zipf.Sample(rng);
    const Value b = static_cast<Value>(rng.Uniform(distinct));
    pairs.insert({a, b});
  }

  std::set<Value> avals, bvals;
  for (const auto& [a, b] : pairs) {
    avals.insert(a);
    bvals.insert(b);
  }

  Database db(q.num_relations());
  for (int i = 0; i < q.num_relations(); ++i) {
    const std::string& name = q.relation(i).name;
    if (name == "R1") {
      for (Value a : avals) db.rel(i).Add({a});
    } else if (name == "R2") {
      for (const auto& [a, b] : pairs) db.rel(i).Add({a, b});
    } else if (name == "R3") {
      for (Value b : bvals) db.rel(i).Add({b});
    } else {
      throw std::invalid_argument("MakeZipfDatabase: unexpected relation " +
                                  name);
    }
  }
  return db;
}

}  // namespace adp
