// Seeded query-family generator for the macro-bench harness and load
// driver (docs/WORKLOAD.md).
//
// A *family* is a query shape (chain / cycle / star / disconnected) plus a
// head class, a cardinality class, and an attribute-domain class. Every
// family carries a precomputed label — its dichotomy verdict (is ADP
// poly-time for this query?) and the Algorithm-2 case its solve tree roots
// at — so harness code can assert coverage of every solver path and tests
// can cross-check the labels against ClassifyDichotomy / AdpStats
// (tests/workload_families_test.cc).
//
// Generation is deterministic: MakeFamilyInstance(spec, seed) always
// produces the bit-identical query text and database (same tuples, same
// order). Databases are spine-planted — each relation carries a diagonal
// of matching tuples besides its random fill — so generated joins are
// never empty and the Boolean / Universe / Decompose solver paths do real
// work instead of short-circuiting on zero outputs.
//
// The family grammar, label table, and sampling weights are documented in
// docs/WORKLOAD.md; tools/check_docs.py keeps that document and this
// header from drifting.

#ifndef ADP_WORKLOAD_FAMILIES_H_
#define ADP_WORKLOAD_FAMILIES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "engine/engine.h"
#include "query/query.h"
#include "solver/compute_adp.h"
#include "util/rng.h"

namespace adp::workload {

/// Join-graph shape of a generated family.
enum class FamilyShape {
  kChain,         // R1(A1,A2), R2(A2,A3), ... — a path
  kCycle,         // chain closed back on A1 — contains a triad
  kStar,          // rays R1(A,B1), R2(A,B2), ... around a shared hub A
  kDisconnected,  // several independent 2-chain components
};

/// Which attributes the query head keeps.
enum class HeadClass {
  kBoolean,    // Q() — counting the Boolean answer
  kFull,       // every body attribute is output
  kProjected,  // a strict, shape-specific subset (chain: the join
               // attribute; star: the hub, with a guard atom R0(A))
};

/// Relation cardinality class (rows per relation before dedup).
enum class CardinalityClass { kTiny, kSmall, kMedium };

/// Attribute-domain class, scaled off the row count: dense domains make
/// joins fat (many matches per value), sparse ones make them thin.
enum class DomainClass { kDense, kMid, kSparse };

/// One generated family: shape x size x head. Pure aggregate (the docs
/// drift-checker parses it); helpers below derive everything else.
struct FamilySpec {
  FamilyShape shape = FamilyShape::kChain;
  /// Chain/cycle: body atoms. Star: rays (hub guard excluded).
  /// Disconnected: independent 2-chain components.
  int relations = 3;
  HeadClass head = HeadClass::kBoolean;
  CardinalityClass cardinality = CardinalityClass::kSmall;
  DomainClass domain = DomainClass::kMid;
};

/// The family's expected classification, from the hard-coded label table
/// (LabelFor). Tests cross-check it against the live classifier + solver.
struct FamilyLabel {
  /// Dichotomy verdict: true iff ADP is poly-time solvable for this query
  /// shape (DichotomyVerdict::ptime).
  bool ptime = true;
  /// Algorithm-2 case the engine's solve tree roots at for this query.
  AdpCase root_case = AdpCase::kBoolean;
};

/// One fully materialized family: the query (text + parsed form), a
/// seeded database named for the query's relations, and the label.
struct FamilyInstance {
  FamilySpec spec;
  /// Stable human-readable family id, e.g. "chain3.bool.small.mid".
  std::string name;
  std::string query_text;
  ConjunctiveQuery query;
  NamedDatabase db;
  FamilyLabel label;
  std::uint64_t seed = 0;
};

/// True iff `spec` is a shape/head/size combination the generator emits;
/// `why` (optional) receives the reason when not. Constraints: chains need
/// >= 1 atom (>= 2 for kFull, exactly 2 when projected, which keeps only
/// the join attribute), cycles >= 3 atoms and a kBoolean or kFull head,
/// stars >= 2
/// rays and a kFull or kProjected head, disconnected >= 2 components and
/// a kFull head.
bool ValidateFamilySpec(const FamilySpec& spec, std::string* why = nullptr);

/// The expected verdict + root case for `spec` (precondition: valid).
/// This table is frozen by tests/workload_families_test.cc against the
/// live ClassifyDichotomy / ClassifyAdpCase / AdpStats.
FamilyLabel LabelFor(const FamilySpec& spec);

/// Stable family id: "<shape><relations>.<head>.<cardinality>.<domain>".
std::string FamilyName(const FamilySpec& spec);

/// Rows per relation for a cardinality class (before dedup).
std::int64_t FamilyRows(CardinalityClass c);

/// Attribute-domain size for a domain class at a given row count.
std::int64_t FamilyDomain(DomainClass d, std::int64_t rows);

/// Deterministically materializes `spec`: same (spec, seed) => identical
/// query text and database, bit for bit. Throws std::invalid_argument on
/// an invalid spec (see ValidateFamilySpec).
FamilyInstance MakeFamilyInstance(const FamilySpec& spec, std::uint64_t seed);

/// The default catalog: a fixed set of specs that together cover every
/// Algorithm-2 case (Boolean, Singleton, Universe, Decompose, Heuristic)
/// and both dichotomy verdicts. Order is stable across runs.
std::vector<FamilySpec> DefaultFamilyCatalog();

/// Materializes each spec with a per-family seed derived from `seed`.
std::vector<FamilyInstance> MakeFamilySet(const std::vector<FamilySpec>& specs,
                                          std::uint64_t seed);

/// Weighted random spec draw (easy shapes dominate ~3:1 over hard ones,
/// mirroring a production mix where most queries are cheap). Always
/// returns a valid spec; deterministic in `rng`'s state.
FamilySpec SampleFamilySpec(Rng& rng);

}  // namespace adp::workload

#endif  // ADP_WORKLOAD_FAMILIES_H_
