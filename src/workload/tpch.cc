#include "workload/tpch.h"

#include <algorithm>

#include "util/rng.h"

namespace adp {
namespace {

ConjunctiveQuery MakeQ1(bool with_selection) {
  ConjunctiveQuery q;
  const AttrId nk = q.AddAttribute("NK");
  const AttrId sk = q.AddAttribute("SK");
  const AttrId pk = q.AddAttribute("PK");
  const AttrId ok = q.AddAttribute("OK");
  q.AddRelation("Supplier", {nk, sk});
  const int partsupp = q.AddRelation("PartSupp", {sk, pk});
  const int lineitem = q.AddRelation("LineItem", {ok, pk});
  q.SetHead(AttrSet({nk, sk, pk, ok}));
  if (with_selection) {
    q.AddSelection(partsupp, pk, kSelectedPart);
    q.AddSelection(lineitem, pk, kSelectedPart);
  }
  return q;
}

}  // namespace

TpchWorkload MakeTpchHard(std::int64_t n, std::uint64_t seed) {
  TpchWorkload w;
  w.query = MakeQ1(/*with_selection=*/false);
  w.db = Database(3);
  Rng rng(seed);

  const std::int64_t ns = std::max<std::int64_t>(1, n / 3);
  const std::int64_t num_parts = std::max<std::int64_t>(1, ns / 4);
  const std::int64_t num_nations = 25;

  // Suppliers: unique keys, round-robin nations.
  for (std::int64_t i = 0; i < ns; ++i) {
    w.db.rel(0).Add({i % num_nations, i});
  }
  // PartSupp: ~4 suppliers per part, suppliers drawn uniformly.
  for (std::int64_t i = 0; i < ns; ++i) {
    const Value part = static_cast<Value>(i % num_parts);
    const Value supplier = static_cast<Value>(rng.Uniform(ns));
    w.db.rel(1).Add({supplier, part});
  }
  // LineItems: sequential order keys over uniformly random parts.
  for (std::int64_t i = 0; i < ns; ++i) {
    const Value part = static_cast<Value>(rng.Uniform(num_parts));
    w.db.rel(2).Add({i, part});
  }
  w.db.DedupAll();
  return w;
}

TpchWorkload MakeTpchSelected(std::int64_t n, std::uint64_t seed) {
  TpchWorkload w;
  w.query = MakeQ1(/*with_selection=*/true);
  w.db = Database(3);
  Rng rng(seed);

  const std::int64_t num_nations = 25;
  // The order-side factor of the selected cross product is bounded so that
  // |σθQ1(D)| grows linearly in n (TPC-H has ~tens of lineitems per part);
  // suppliers/partsupp absorb the rest of the budget.
  const std::int64_t orders = std::min<std::int64_t>(100, std::max<std::int64_t>(1, n / 3));
  const std::int64_t suppliers = std::max<std::int64_t>(1, (n - orders) / 2);

  for (std::int64_t i = 0; i < suppliers; ++i) {
    w.db.rel(0).Add({i % num_nations, i});
    w.db.rel(1).Add({i, kSelectedPart});
  }
  for (std::int64_t i = 0; i < orders; ++i) {
    w.db.rel(2).Add({i, kSelectedPart});
  }
  // Noise: rows on other parts, filtered out by the selection.
  const std::int64_t noise = suppliers / 10;
  for (std::int64_t i = 0; i < noise; ++i) {
    const Value other_part = static_cast<Value>(1 + rng.Uniform(1000));
    w.db.rel(1).Add({static_cast<Value>(rng.Uniform(suppliers)), other_part});
    w.db.rel(2).Add({orders + i, other_part});
  }
  w.db.DedupAll();
  return w;
}

}  // namespace adp
