// Zipfian synthetic data (§8.4): degree-skewed instances for the easy
// singleton query Q6 and the hard Qpath query.
//
//   Q6(A,B)    :- R1(A), R2(A,B)
//   Qpath(A,B) :- R1(A), R2(A,B), R3(B)
//
// R2 holds n pairs; the A side is drawn from Zipf(alpha) over 0.2*n distinct
// keys (alpha = 0 is uniform; larger alpha = more skew), the B side
// uniformly over 0.2*n keys. R1/R3 hold the distinct A/B values in use.

#ifndef ADP_WORKLOAD_ZIPF_DATA_H_
#define ADP_WORKLOAD_ZIPF_DATA_H_

#include <cstdint>

#include "query/query.h"
#include "relational/database.h"

namespace adp {

/// Q6(A,B) :- R1(A), R2(A,B).
ConjunctiveQuery MakeQ6();

/// Qpath(A,B) :- R1(A), R2(A,B), R3(B).
ConjunctiveQuery MakeQPath();

/// Builds a database aligned with `q` (which must use relation names R1, R2
/// and optionally R3 with the shapes above).
Database MakeZipfDatabase(const ConjunctiveQuery& q, std::int64_t n,
                          double alpha, std::uint64_t seed);

}  // namespace adp

#endif  // ADP_WORKLOAD_ZIPF_DATA_H_
