// Uniform random instances for the §8.5 optimization studies.
//
//   Q7(A,B,C,D,E,F,G) :- R1(A,B,C), R2(A,B,C,D,E), R3(A,B,C,D,G),
//                        R4(A,B,C,F)
//     — singleton query: A, B, C are universal.
//   Q8(A1,B1,...,A3,B3) :- R11(A1), R12(A1,B1), R21(A2), R22(A2,B2),
//                          R31(A3), R32(A3,B3)
//     — disconnected query with three easy components.

#ifndef ADP_WORKLOAD_SYNTHETIC_H_
#define ADP_WORKLOAD_SYNTHETIC_H_

#include <cstdint>
#include <vector>

#include "query/query.h"
#include "relational/database.h"

namespace adp {

/// Q7 as printed in §8.5.
ConjunctiveQuery MakeQ7();

/// Q8 as printed in §8.5.
ConjunctiveQuery MakeQ8();

/// Fills every relation of `q` with `sizes[i]` random tuples whose values
/// are uniform in [1, domain], deduplicated (so instances may be slightly
/// smaller than requested).
Database MakeUniformDatabase(const ConjunctiveQuery& q,
                             const std::vector<std::int64_t>& sizes,
                             std::int64_t domain, std::uint64_t seed);

/// Correlated instance for Q7: `num_keys` distinct (A,B,C) combinations
/// shared by all four relations (so the join is dense and the Universe
/// partition has `num_keys` classes), with `rows_per_key` rows per key in
/// R2/R3/R4 over small secondary domains. Independent uniform draws — the
/// literal reading of §8.5 — would leave the four-way join empty; see
/// EXPERIMENTS.md.
Database MakeQ7Database(const ConjunctiveQuery& q, int num_keys,
                        int rows_per_key, std::uint64_t seed);

}  // namespace adp

#endif  // ADP_WORKLOAD_SYNTHETIC_H_
