// Synthetic ego-network workload (§8.1 SNAP substitution; see DESIGN.md).
//
// The paper uses the Facebook ego network of user 414 (7 circles, 150 nodes,
// 3386 directed edges), splits the bi-directed edge list into four tables
// R1..R4 by rank mod 4, and evaluates:
//   Q2(A,B,C,D) :- R1(A,B), R2(B,C), R3(C,D)            (3-path, full)
//   Q3(A,B,C)   :- R1(A,B), R2(B,C), R3(C,A)            (triangle, full)
//   Q4(A,C,E,G) :- R1(A,B), R2(B,C), R3(E,F), R4(F,G)   (2x 2-path, proj.)
//   Q5(A,B,C)   :- R1(A,E), R2(B,E), R3(C,E)            (common friend)
// We generate a clustered social graph of the same size.

#ifndef ADP_WORKLOAD_EGONET_H_
#define ADP_WORKLOAD_EGONET_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "query/query.h"
#include "relational/database.h"

namespace adp {

/// The four edge tables (bi-directed edges, split by rank mod 4).
struct EgonetTables {
  std::vector<std::vector<std::pair<Value, Value>>> tables;  // size 4
  int num_nodes = 0;
  std::int64_t num_directed_edges = 0;
};

/// Generates a clustered graph: `circles` overlapping groups over `nodes`
/// vertices, intra-circle edges sampled to hit ~`target_directed_edges`
/// after bi-direction, plus a few inter-circle edges.
EgonetTables MakeEgonet(int nodes, int circles,
                        std::int64_t target_directed_edges,
                        std::uint64_t seed);

/// The paper's configuration (150 nodes, 7 circles, 3386 directed edges).
EgonetTables MakePaperEgonet(std::uint64_t seed);

/// Loads the tables into a database aligned with `q`: body relation "Ri"
/// (binary) receives tables[i-1].
Database MakeEdgeDatabase(const ConjunctiveQuery& q,
                          const EgonetTables& tables);

/// The four evaluation queries.
ConjunctiveQuery MakeQ2();
ConjunctiveQuery MakeQ3();
ConjunctiveQuery MakeQ4();
ConjunctiveQuery MakeQ5();

}  // namespace adp

#endif  // ADP_WORKLOAD_EGONET_H_
