// Robustness analysis (Examples 2–3 of the paper): sweep removal targets
// and report how many input deletions each level of output disruption
// requires. A steep curve (large disruption from few deletions) indicates a
// fragile view; a flat one, a robust view.

#ifndef ADP_ANALYSIS_ROBUSTNESS_H_
#define ADP_ANALYSIS_ROBUSTNESS_H_

#include <cstdint>
#include <vector>

#include "query/query.h"
#include "relational/database.h"
#include "solver/compute_adp.h"

namespace adp {

/// One point of a disruption curve.
struct DisruptionPoint {
  double fraction = 0.0;          // requested fraction of outputs removed
  std::int64_t k = 0;             // resulting absolute target
  std::int64_t deletions = 0;     // input tuples the solver needed
  bool exact = false;             // optimal (vs heuristic upper bound)
  bool feasible = true;
};

/// The curve plus instance-level context.
struct DisruptionCurve {
  std::int64_t output_count = 0;  // |Q(D)|
  std::int64_t input_count = 0;   // |D|
  std::vector<DisruptionPoint> points;

  /// Fraction of the input that must be deleted to reach the given point
  /// (the robustness measure of Example 3).
  double InputFraction(std::size_t i) const {
    return input_count == 0
               ? 0.0
               : static_cast<double>(points[i].deletions) /
                     static_cast<double>(input_count);
  }
};

/// Computes the curve at the given output fractions (each in (0, 1]).
DisruptionCurve ComputeDisruptionCurve(const ConjunctiveQuery& q,
                                       const Database& db,
                                       const std::vector<double>& fractions,
                                       const AdpOptions& options = {});

}  // namespace adp

#endif  // ADP_ANALYSIS_ROBUSTNESS_H_
