// DeletionMonitor: incremental what-if analysis over a stream of input
// deletions. Wraps the ProvenanceIndex behind a stable public API so a
// downstream user can interactively delete tuples and watch |Q(D)| drop —
// the "counting query answers under deletion propagation" primitive that
// gives the paper its title.

#ifndef ADP_ANALYSIS_MONITOR_H_
#define ADP_ANALYSIS_MONITOR_H_

#include <cstdint>
#include <memory>

#include "query/query.h"
#include "relational/database.h"
#include "relational/provenance.h"
#include "solver/solution.h"

namespace adp {

class DeletionMonitor {
 public:
  /// Materializes the provenance of Q(D). `q` must be selection-free (push
  /// selections down first with ApplySelections).
  DeletionMonitor(const ConjunctiveQuery& q, const Database& db);

  /// |Q(D)| before any deletion.
  std::int64_t initial_count() const { return initial_; }

  /// |Q(D - deleted)| right now.
  std::int64_t current_count() const { return index_->alive_outputs(); }

  /// Outputs removed so far.
  std::int64_t removed() const { return initial_ - current_count(); }

  /// Deletes one input tuple (local coordinates of the database the monitor
  /// was built on); returns how many outputs died. Idempotent.
  std::int64_t Delete(int relation, TupleId row);

  /// Exact marginal impact of deleting the tuple *now*, without deleting.
  std::int64_t Impact(int relation, TupleId row) const;

  /// True if the tuple still contributes to at least one alive output.
  bool IsRelevant(int relation, TupleId row) const;

 private:
  std::unique_ptr<ProvenanceIndex> index_;
  std::int64_t initial_ = 0;
};

}  // namespace adp

#endif  // ADP_ANALYSIS_MONITOR_H_
