#include "analysis/monitor.h"

namespace adp {

DeletionMonitor::DeletionMonitor(const ConjunctiveQuery& q,
                                 const Database& db)
    : index_(std::make_unique<ProvenanceIndex>(q.body(), q.head(), db)),
      initial_(index_->total_outputs()) {}

std::int64_t DeletionMonitor::Delete(int relation, TupleId row) {
  return index_->Delete(relation, row);
}

std::int64_t DeletionMonitor::Impact(int relation, TupleId row) const {
  return index_->Profit(relation, row);
}

bool DeletionMonitor::IsRelevant(int relation, TupleId row) const {
  return index_->IsRelevant(relation, row);
}

}  // namespace adp
