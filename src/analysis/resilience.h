// Resilience (Freire et al. [11], §3.3): the minimum number of input tuples
// whose deletion makes a boolean query false. ADP generalizes it — on a
// boolean query, resilience = ADP(Q, D, 1); on a non-boolean query the paper
// notes resilience equals ADP with k = |Q(D)| (empty the output).
//
// This header packages both views behind one call.

#ifndef ADP_ANALYSIS_RESILIENCE_H_
#define ADP_ANALYSIS_RESILIENCE_H_

#include <cstdint>

#include "query/query.h"
#include "relational/database.h"
#include "solver/compute_adp.h"

namespace adp {

/// Result of a resilience computation.
struct ResilienceResult {
  /// Minimum deletions to make the (boolean version of the) query false;
  /// 0 if it is false already.
  std::int64_t resilience = 0;
  /// A witness set (root coordinates), unless counting_only.
  std::vector<TupleRef> tuples;
  /// True iff the value is optimal (boolean dichotomy + linearization).
  bool exact = true;
};

/// Computes the resilience of `q` on `db`. Non-boolean heads are dropped
/// (resilience is a property of the boolean query underneath). Options are
/// honored (counting_only, restrictions, stats).
ResilienceResult ComputeResilience(const ConjunctiveQuery& q,
                                   const Database& db,
                                   const AdpOptions& options = {});

}  // namespace adp

#endif  // ADP_ANALYSIS_RESILIENCE_H_
