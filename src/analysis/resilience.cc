#include "analysis/resilience.h"

#include "query/transform.h"

namespace adp {

ResilienceResult ComputeResilience(const ConjunctiveQuery& q,
                                   const Database& db,
                                   const AdpOptions& options) {
  // Drop the head: resilience is defined on the boolean query.
  ConjunctiveQuery boolean = RemoveAttributes(q, AttrSet());
  boolean.SetHead(AttrSet());

  const AdpSolution sol = ComputeAdp(boolean, db, 1, options);
  ResilienceResult result;
  if (!sol.feasible && sol.output_count == 0) {
    // Query already false: nothing to delete.
    result.resilience = 0;
    result.exact = true;
    return result;
  }
  result.resilience = sol.cost;
  result.tuples = sol.tuples;
  result.exact = sol.exact;
  return result;
}

}  // namespace adp
