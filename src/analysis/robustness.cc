#include "analysis/robustness.h"

#include <algorithm>

#include "query/transform.h"
#include "relational/join.h"

namespace adp {

DisruptionCurve ComputeDisruptionCurve(const ConjunctiveQuery& q,
                                       const Database& db,
                                       const std::vector<double>& fractions,
                                       const AdpOptions& options) {
  DisruptionCurve curve;
  curve.input_count = static_cast<std::int64_t>(db.TotalTuples());
  if (q.HasSelections()) {
    const QueryDb pushed = ApplySelections(q, db);
    curve.output_count = static_cast<std::int64_t>(CountOutputs(
        pushed.query.body(), pushed.query.head(), pushed.db));
  } else {
    curve.output_count =
        static_cast<std::int64_t>(CountOutputs(q.body(), q.head(), db));
  }

  for (double f : fractions) {
    DisruptionPoint point;
    point.fraction = f;
    point.k = std::max<std::int64_t>(
        1, static_cast<std::int64_t>(f * static_cast<double>(
                                             curve.output_count)));
    if (curve.output_count == 0) {
      point.feasible = false;
      curve.points.push_back(point);
      continue;
    }
    const AdpSolution sol = ComputeAdp(q, db, point.k, options);
    point.deletions = sol.cost;
    point.exact = sol.exact;
    point.feasible = sol.feasible;
    curve.points.push_back(point);
  }
  return curve;
}

}  // namespace adp
